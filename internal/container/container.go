// Package container implements VMF ("V2V Media Format"), the seekable
// single-stream packet container the execution engine reads and writes.
//
// VMF stands in for MP4/MKV. Its on-disk layout mirrors what matters for
// query execution: packets are stored contiguously, and a compact index at
// the end of the file records every packet's presentation timestamp, byte
// extent, and keyframe flag. The index is what makes time-seeks and
// smart-cut planning cheap (find keyframes in a clipped range without
// touching packet data), the same role keyframe indexes play in Scanner
// and LosslessCut.
//
// Layout:
//
//	magic "VMF1" | u32 header length | JSON StreamInfo
//	packet bytes ...
//	index: per packet { i64 pts, u64 offset, u32 size, u8 key }
//	footer: u64 index offset | u32 packet count | magic "XFMV"
//
// Timestamps are frame counts: packet PTS n has presentation time
// Start + n/FPS, kept exact with rationals.
package container

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"v2v/internal/rational"
)

const (
	magicHead     = "VMF1"
	magicFoot     = "XFMV"
	indexRecSize  = 8 + 8 + 4 + 1
	footerSize    = 8 + 4 + 4
	maxHeaderSize = 1 << 20
)

// StreamInfo describes the single video stream in a VMF file. Codec
// parameters are carried in the container so a reader can construct a
// decoder without out-of-band data.
type StreamInfo struct {
	Codec   string       `json:"codec"` // codec fourcc, e.g. "GV10"
	Width   int          `json:"width"`
	Height  int          `json:"height"`
	FPS     rational.Rat `json:"fps"`
	Start   rational.Rat `json:"start"`             // presentation time of PTS 0
	Quality int          `json:"quality,omitempty"` // codec quantizer
	GOP     int          `json:"gop,omitempty"`     // keyframe interval hint
	Level   int          `json:"level,omitempty"`   // codec effort
}

// Validate reports whether the stream info is usable.
func (si StreamInfo) Validate() error {
	if si.Codec == "" {
		return errors.New("container: empty codec")
	}
	if si.Width <= 0 || si.Height <= 0 {
		return fmt.Errorf("container: invalid dimensions %dx%d", si.Width, si.Height)
	}
	if si.FPS.Sign() <= 0 {
		return fmt.Errorf("container: non-positive fps %v", si.FPS)
	}
	return nil
}

// Compatible reports whether packets from a stream with info o can be
// spliced into a stream with this info without re-encoding — the FFmpeg
// "concatenating compatible streams" condition.
func (si StreamInfo) Compatible(o StreamInfo) bool {
	return si.Codec == o.Codec && si.Width == o.Width && si.Height == o.Height &&
		si.FPS.Equal(o.FPS) && si.Quality == o.Quality && si.Level == o.Level
}

// TimeOf returns the presentation time of the packet with the given PTS.
func (si StreamInfo) TimeOf(pts int64) rational.Rat {
	return si.Start.Add(rational.FromInt(pts).Div(si.FPS))
}

// PTSOf returns the PTS whose presentation time is t and whether t lands
// exactly on a frame boundary.
func (si StreamInfo) PTSOf(t rational.Rat) (int64, bool) {
	k := t.Sub(si.Start).Mul(si.FPS)
	return k.Floor(), k.IsInt()
}

// FrameDur returns the duration of one frame (1/FPS).
func (si StreamInfo) FrameDur() rational.Rat {
	return rational.One.Div(si.FPS)
}

// PacketRecord is one index entry.
type PacketRecord struct {
	PTS    int64
	Offset int64
	Size   int
	Key    bool
}

// Writer writes a VMF file. Packets must be appended in strictly
// increasing PTS order and the first packet must be a keyframe.
type Writer struct {
	f      *os.File
	info   StreamInfo
	recs   []PacketRecord
	off    int64
	closed bool
}

// Create opens path for writing and emits the header.
func Create(path string, info StreamInfo) (*Writer, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	hdr, err := json.Marshal(info)
	if err != nil {
		return nil, fmt.Errorf("container: marshal header: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("container: %w", err)
	}
	w := &Writer{f: f, info: info}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	for _, b := range [][]byte{[]byte(magicHead), lenBuf[:], hdr} {
		n, err := f.Write(b)
		if err != nil {
			f.Close()
			os.Remove(path)
			return nil, fmt.Errorf("container: write header: %w", err)
		}
		w.off += int64(n)
	}
	return w, nil
}

// Info returns the stream info the writer was created with.
func (w *Writer) Info() StreamInfo { return w.info }

// WritePacket appends one packet.
func (w *Writer) WritePacket(pts int64, key bool, data []byte) error {
	if w.closed {
		return errors.New("container: writer closed")
	}
	if len(w.recs) == 0 && !key {
		return errors.New("container: first packet must be a keyframe")
	}
	if n := len(w.recs); n > 0 && pts <= w.recs[n-1].PTS {
		return fmt.Errorf("container: PTS %d not increasing (last %d)", pts, w.recs[n-1].PTS)
	}
	if len(data) == 0 {
		return errors.New("container: empty packet")
	}
	if _, err := w.f.Write(data); err != nil {
		return fmt.Errorf("container: write packet: %w", err)
	}
	w.recs = append(w.recs, PacketRecord{PTS: pts, Offset: w.off, Size: len(data), Key: key})
	w.off += int64(len(data))
	return nil
}

// Close writes the index and footer and closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	idxOff := w.off
	buf := make([]byte, 0, len(w.recs)*indexRecSize+footerSize)
	var rec [indexRecSize]byte
	for _, r := range w.recs {
		binary.LittleEndian.PutUint64(rec[0:], uint64(r.PTS))
		binary.LittleEndian.PutUint64(rec[8:], uint64(r.Offset))
		binary.LittleEndian.PutUint32(rec[16:], uint32(r.Size))
		rec[20] = 0
		if r.Key {
			rec[20] = 1
		}
		buf = append(buf, rec[:]...)
	}
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(idxOff))
	binary.LittleEndian.PutUint32(foot[8:], uint32(len(w.recs)))
	copy(foot[12:], magicFoot)
	buf = append(buf, foot[:]...)
	if _, err := w.f.Write(buf); err != nil {
		w.f.Close()
		return fmt.Errorf("container: write index: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("container: close: %w", err)
	}
	return nil
}

// Reader reads a VMF file. Safe for concurrent ReadPacket calls (it uses
// positioned reads).
type Reader struct {
	f    *os.File
	info StreamInfo
	recs []PacketRecord
}

// Open opens and indexes a VMF file.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("container: %w", err)
	}
	r, err := newReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newReader(f *os.File) (*Reader, error) {
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("container: read magic: %w", err)
	}
	if string(head[:4]) != magicHead {
		return nil, fmt.Errorf("container: bad magic %q", head[:4])
	}
	hdrLen := binary.LittleEndian.Uint32(head[4:])
	if hdrLen == 0 || hdrLen > maxHeaderSize {
		return nil, fmt.Errorf("container: implausible header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("container: read header: %w", err)
	}
	var info StreamInfo
	if err := json.Unmarshal(hdr, &info); err != nil {
		return nil, fmt.Errorf("container: parse header: %w", err)
	}
	if err := info.Validate(); err != nil {
		return nil, err
	}

	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("container: %w", err)
	}
	if end < footerSize {
		return nil, errors.New("container: truncated file (no footer)")
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], end-footerSize); err != nil {
		return nil, fmt.Errorf("container: read footer: %w", err)
	}
	if string(foot[12:]) != magicFoot {
		return nil, errors.New("container: bad footer magic (unclosed writer?)")
	}
	idxOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	count := int(binary.LittleEndian.Uint32(foot[8:]))
	if idxOff < 0 || idxOff > end-footerSize || int64(count)*indexRecSize != end-footerSize-idxOff {
		return nil, errors.New("container: corrupt index geometry")
	}
	idx := make([]byte, count*indexRecSize)
	if _, err := f.ReadAt(idx, idxOff); err != nil {
		return nil, fmt.Errorf("container: read index: %w", err)
	}
	headerEnd := int64(8 + hdrLen)
	recs := make([]PacketRecord, count)
	for i := range recs {
		rec := idx[i*indexRecSize:]
		recs[i] = PacketRecord{
			PTS:    int64(binary.LittleEndian.Uint64(rec[0:])),
			Offset: int64(binary.LittleEndian.Uint64(rec[8:])),
			Size:   int(binary.LittleEndian.Uint32(rec[16:])),
			Key:    rec[20] == 1,
		}
		// Validate each record against the file geometry so that a
		// corrupted index cannot demand absurd allocations or reads.
		r := recs[i]
		if r.Size <= 0 || r.Offset < headerEnd || r.Offset+int64(r.Size) > idxOff {
			return nil, fmt.Errorf("container: corrupt index record %d (offset %d size %d)", i, r.Offset, r.Size)
		}
		if rec[20] > 1 {
			return nil, fmt.Errorf("container: corrupt key flag in record %d", i)
		}
		if i > 0 && r.PTS <= recs[i-1].PTS {
			return nil, fmt.Errorf("container: non-increasing PTS in record %d", i)
		}
	}
	if count > 0 && !recs[0].Key {
		return nil, errors.New("container: stream does not start at a keyframe")
	}
	return &Reader{f: f, info: info, recs: recs}, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Info returns the stream description.
func (r *Reader) Info() StreamInfo { return r.info }

// NumPackets returns the number of packets in the file.
func (r *Reader) NumPackets() int { return len(r.recs) }

// Record returns the index entry for packet i.
func (r *Reader) Record(i int) PacketRecord { return r.recs[i] }

// Records returns the full packet index (do not mutate).
func (r *Reader) Records() []PacketRecord { return r.recs }

// ReadPacket reads the payload of packet i.
func (r *Reader) ReadPacket(i int) ([]byte, error) {
	if i < 0 || i >= len(r.recs) {
		return nil, fmt.Errorf("container: packet %d out of range [0,%d)", i, len(r.recs))
	}
	buf := make([]byte, r.recs[i].Size)
	if _, err := r.f.ReadAt(buf, r.recs[i].Offset); err != nil {
		return nil, fmt.Errorf("container: read packet %d: %w", i, err)
	}
	return buf, nil
}

// IndexOfPTS returns the packet index with the given PTS, or (-1, false).
func (r *Reader) IndexOfPTS(pts int64) (int, bool) {
	i := sort.Search(len(r.recs), func(i int) bool { return r.recs[i].PTS >= pts })
	if i < len(r.recs) && r.recs[i].PTS == pts {
		return i, true
	}
	return -1, false
}

// KeyframeAtOrBefore returns the index of the last keyframe packet at or
// before packet i, or (-1, false) if none exists (corrupt file).
func (r *Reader) KeyframeAtOrBefore(i int) (int, bool) {
	if i >= len(r.recs) {
		i = len(r.recs) - 1
	}
	for ; i >= 0; i-- {
		if r.recs[i].Key {
			return i, true
		}
	}
	return -1, false
}

// NextKeyframeAfter returns the index of the first keyframe packet at or
// after packet i, or (-1, false).
func (r *Reader) NextKeyframeAfter(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	for ; i < len(r.recs); i++ {
		if r.recs[i].Key {
			return i, true
		}
	}
	return -1, false
}

// Duration returns the presentation duration of the stream (packet count
// over FPS for a complete stream).
func (r *Reader) Duration() rational.Rat {
	if len(r.recs) == 0 {
		return rational.Zero
	}
	last := r.recs[len(r.recs)-1].PTS
	first := r.recs[0].PTS
	return rational.FromInt(last - first + 1).Div(r.info.FPS)
}

// TimeRange returns the half-open presentation interval covered by the
// stream.
func (r *Reader) TimeRange() rational.Interval {
	if len(r.recs) == 0 {
		return rational.Interval{}
	}
	return rational.Interval{
		Lo: r.info.TimeOf(r.recs[0].PTS),
		Hi: r.info.TimeOf(r.recs[len(r.recs)-1].PTS).Add(r.info.FrameDur()),
	}
}
