package container

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"v2v/internal/rational"
)

// memFile adapts a byte slice to the File interface so the fuzzer can
// hand NewReader arbitrary container images without touching disk.
type memFile struct{ *bytes.Reader }

func (memFile) Close() error { return nil }

// fuzzSeedBytes builds a small valid VMF container in a temp dir and
// returns its bytes; mutations of it seed the corpus alongside the
// checked-in testdata/fuzz files.
func fuzzSeedBytes(tb testing.TB) []byte {
	tb.Helper()
	p := filepath.Join(tb.TempDir(), "seed.vmf")
	info := StreamInfo{Codec: "GV10", Width: 64, Height: 48, FPS: rational.FromInt(24), Quality: 1, GOP: 12, Level: 4}
	w, err := Create(p, info)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := w.WritePacket(int64(i), i%3 == 0, []byte{byte(i), 0xAA, byte(i * 7)}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzNewReader throws arbitrary bytes at the container opener and, when
// a reader comes back, at every accessor that trusts the parsed index.
// The property under test: corrupt input produces errors, never panics,
// index-geometry-driven huge allocations, or out-of-range reads.
func FuzzNewReader(f *testing.F) {
	seed := fuzzSeedBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:4])
	f.Add([]byte{})
	for _, off := range []int{0, 5, len(seed) / 2, len(seed) - 5} {
		mut := append([]byte(nil), seed...)
		mut[off] ^= 0xFF
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(memFile{bytes.NewReader(data)})
		if err != nil {
			return // rejection is the expected outcome for corrupt input
		}
		defer r.Close()
		_ = r.Info()
		_ = r.Version()
		_ = r.ContentID()
		_ = r.Duration()
		_ = r.TimeRange()
		for i := 0; i < r.NumPackets(); i++ {
			_ = r.Record(i)
			_, _ = r.ReadPacket(i)
		}
		if n := r.NumPackets(); n > 0 {
			_, _ = r.IndexOfPTS(r.Record(0).PTS)
			_, _ = r.KeyframeAtOrBefore(n - 1)
			_, _ = r.NextKeyframeAfter(0)
		}
	})
}
