// Package rewrite implements V2V's data-dependent rewriter (§IV-C of the
// paper): the first, data-only pass of the two-pass execution method.
//
// For each time in the spec's domain, the rewriter evaluates the *data*
// parameters of every transform that declares a data-dependent equivalence
// function f_dde (frame parameters stay symbolic placeholders) and replaces
// the call with the simpler equivalent expression f_dde returns — e.g.
// IfThenElse collapses to the taken branch, and BoundingBox over an empty
// box list collapses to the plain video reference. Consecutive times whose
// rewritten render expressions coincide are then grouped into match arms.
//
// The result is an equivalent spec *on the referenced data* that exposes
// identity stretches to the downstream (data-oblivious) optimizer, which
// can then stream-copy them.
package rewrite

import (
	"fmt"

	"v2v/internal/check"
	"v2v/internal/data"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

// Stats reports what the rewriter did.
type Stats struct {
	// Applied counts f_dde rewrites by transform name.
	Applied map[string]int
	// TimesEvaluated is the number of (time, call) data evaluations.
	TimesEvaluated int
	// ArmsBefore and ArmsAfter count match arms around the pass.
	ArmsBefore int
	ArmsAfter  int
	// Skipped is true when the spec had nothing data-dependent to rewrite.
	Skipped bool
}

// arrayDataSource adapts checked arrays to the evaluator.
type arrayDataSource map[string]*data.Array

func (s arrayDataSource) DataAt(name string, t rational.Rat) (data.Value, bool, error) {
	arr, ok := s[name]
	if !ok {
		return data.Value{}, false, fmt.Errorf("rewrite: unknown data array %q", name)
	}
	v, ok := arr.At(t)
	return v, ok, nil
}

// Rewrite applies the data-only pass to a checked spec and returns the
// rewritten spec (a new spec sharing sources) plus statistics. The input
// is not modified.
func Rewrite(c *check.Checked) (*vql.Spec, Stats, error) {
	spec := c.Spec
	stats := Stats{Applied: map[string]int{}}
	if m, ok := spec.Render.(vql.Match); ok {
		stats.ArmsBefore = len(m.Arms)
	} else {
		stats.ArmsBefore = 1
	}

	ds := arrayDataSource(c.Arrays)

	if !hasPerTimeDependence(spec.Render) {
		// No f_dde argument varies with time or data; a single static
		// fold (constant arguments only) is complete.
		rw := &rewriter{data: ds, stats: &stats}
		out, changed, err := rw.rewriteStatic(spec)
		if err != nil {
			return nil, stats, err
		}
		if !changed {
			stats.Skipped = true
			stats.ArmsAfter = stats.ArmsBefore
			return spec, stats, nil
		}
		if m, ok := out.Render.(vql.Match); ok {
			stats.ArmsAfter = len(m.Arms)
		} else {
			stats.ArmsAfter = 1
		}
		return out, stats, nil
	}
	domain := spec.TimeDomain
	n := domain.Count()

	type armAcc struct {
		start int
		body  vql.Expr
	}
	var arms []vql.MatchArm
	var cur *armAcc
	flush := func(endExclusive int) {
		if cur == nil {
			return
		}
		sub := rational.NewRange(domain.At(cur.start), domain.At(endExclusive-1).Add(domain.Step), domain.Step)
		arms = append(arms, vql.MatchArm{Guard: vql.RangeGuard(sub), Body: cur.body})
		cur = nil
	}

	rw := &rewriter{data: ds, stats: &stats}
	for i := 0; i < n; i++ {
		at := domain.At(i)
		body := spec.RenderFor(at)
		if body == nil {
			return nil, stats, fmt.Errorf("rewrite: no match arm covers t=%s", at)
		}
		newBody, err := rw.rewriteAt(body, at)
		if err != nil {
			return nil, stats, err
		}
		if cur != nil && cur.body.EqualExpr(newBody) {
			continue
		}
		flush(i)
		cur = &armAcc{start: i, body: newBody}
	}
	flush(n)

	out := spec.Clone()
	if len(arms) == 1 && arms[0].Guard.EqualGuard(vql.RangeGuard(domain)) {
		out.Render = arms[0].Body
	} else {
		out.Render = vql.Match{Arms: arms}
	}
	stats.ArmsAfter = len(arms)
	return out, stats, nil
}

// hasPerTimeDependence reports whether any f_dde call has a non-frame
// argument that varies with time or data. Only such specs need the
// per-time enumeration; constant-argument f_dde calls fold statically.
func hasPerTimeDependence(e vql.Expr) bool {
	found := false
	vql.Walk(e, func(n vql.Expr) {
		c, ok := n.(vql.Call)
		if !ok || found {
			return
		}
		tr, ok := vql.Lookup(c.Name)
		if !ok || tr.DDE == nil {
			return
		}
		for _, a := range c.Args {
			if !containsFrame(a) && containsTimeOrData(a) {
				found = true
				return
			}
		}
	})
	return found
}

// containsTimeOrData reports whether the expression references t or a data
// array (i.e. its value varies per output frame).
func containsTimeOrData(e vql.Expr) bool {
	found := false
	vql.Walk(e, func(n vql.Expr) {
		switch n.(type) {
		case vql.TimeVar, vql.DataRef:
			found = true
		}
	})
	return found
}

// rewriteStatic applies f_dde folds whose non-frame arguments are all
// constants, once for the whole spec. Time- or data-dependent arguments
// are passed as invalid placeholders so no f_dde mistakes them for known
// values.
func (r *rewriter) rewriteStatic(spec *vql.Spec) (*vql.Spec, bool, error) {
	fold := func(body vql.Expr) (vql.Expr, error) {
		// Any constant evaluation is time-independent; evaluate at the
		// domain start (the env's T is unused by constant expressions).
		return r.rewriteAtWith(body, spec.TimeDomain.Start, true)
	}
	changed := false
	var render vql.Expr
	if m, ok := spec.Render.(vql.Match); ok {
		arms := make([]vql.MatchArm, len(m.Arms))
		for i, a := range m.Arms {
			nb, err := fold(a.Body)
			if err != nil {
				return nil, false, err
			}
			if !nb.EqualExpr(a.Body) {
				changed = true
			}
			arms[i] = vql.MatchArm{Guard: a.Guard, Body: nb}
		}
		render = vql.Match{Arms: arms}
	} else {
		nb, err := fold(spec.Render)
		if err != nil {
			return nil, false, err
		}
		changed = !nb.EqualExpr(spec.Render)
		render = nb
	}
	if !changed {
		return spec, false, nil
	}
	out := spec.Clone()
	out.Render = render
	return out, true, nil
}

type rewriter struct {
	data  arrayDataSource
	stats *Stats
}

// rewriteAt rewrites the body expression for one specific time.
func (r *rewriter) rewriteAt(e vql.Expr, at rational.Rat) (vql.Expr, error) {
	return r.rewriteAtWith(e, at, false)
}

// rewriteAtWith rewrites e at time at. In staticOnly mode, time- or
// data-dependent non-frame arguments are passed to f_dde as invalid
// placeholders (unknown) instead of being evaluated.
func (r *rewriter) rewriteAtWith(e vql.Expr, at rational.Rat, staticOnly bool) (vql.Expr, error) {
	switch n := e.(type) {
	case vql.Call:
		args := make([]vql.Expr, len(n.Args))
		for i, a := range n.Args {
			ra, err := r.rewriteAtWith(a, at, staticOnly)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		out := vql.Call{Name: n.Name, Args: args}
		tr, ok := vql.Lookup(n.Name)
		if !ok || tr.DDE == nil {
			return out, nil
		}
		vals := make([]vql.Val, len(args))
		for i, a := range args {
			if containsFrame(a) {
				vals[i] = vql.Val{Type: vql.TypeFrame}
				continue
			}
			if staticOnly && containsTimeOrData(a) {
				vals[i] = vql.Val{Type: vql.TypeInvalid}
				continue
			}
			v, err := vql.Eval(a, &vql.Env{T: at, Data: r.data})
			if err != nil {
				return nil, fmt.Errorf("rewrite: evaluating %s at t=%s: %w", a, at, err)
			}
			vals[i] = v
			r.stats.TimesEvaluated++
		}
		if repl, ok := tr.DDE(args, vals); ok {
			r.stats.Applied[n.Name]++
			return repl, nil
		}
		return out, nil
	case vql.BinOp:
		l, err := r.rewriteAtWith(n.L, at, staticOnly)
		if err != nil {
			return nil, err
		}
		rr, err := r.rewriteAtWith(n.R, at, staticOnly)
		if err != nil {
			return nil, err
		}
		return vql.BinOp{Op: n.Op, L: l, R: rr}, nil
	case vql.Not:
		inner, err := r.rewriteAtWith(n.E, at, staticOnly)
		if err != nil {
			return nil, err
		}
		return vql.Not{E: inner}, nil
	case vql.Neg:
		inner, err := r.rewriteAtWith(n.E, at, staticOnly)
		if err != nil {
			return nil, err
		}
		return vql.Neg{E: inner}, nil
	default:
		// Literals, t, video and data references stay symbolic: the
		// rewritten spec keeps indexes in terms of t so that consecutive
		// times group into arms.
		return e, nil
	}
}

// containsFrame reports whether the expression produces or contains frames
// (and therefore cannot be evaluated during the data-only pass).
func containsFrame(e vql.Expr) bool {
	found := false
	vql.Walk(e, func(n vql.Expr) {
		switch c := n.(type) {
		case vql.VideoRef:
			found = true
		case vql.Call:
			if tr, ok := vql.Lookup(c.Name); ok && tr.Result == vql.TypeFrame {
				found = true
			}
		}
	})
	return found
}
