package rewrite

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"v2v/internal/check"
	"v2v/internal/data"
	"v2v/internal/dataset"
	"v2v/internal/raster"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

var (
	fxDir  string
	fxVid  string
	fxVid2 string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "v2v-rewrite-")
	if err != nil {
		panic(err)
	}
	fxDir = dir
	fxVid = filepath.Join(dir, "a.vmf")
	fxVid2 = filepath.Join(dir, "b.vmf")
	p := dataset.TinyProfile()
	if _, err := dataset.Generate(fxVid, "", p, rational.FromInt(4)); err != nil {
		panic(err)
	}
	p.Seed = 55
	if _, err := dataset.Generate(fxVid2, "", p, rational.FromInt(4)); err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// saveArray writes entries to a JSON file in fxDir and returns its path.
func saveArray(t *testing.T, name string, entries []data.Entry) string {
	t.Helper()
	arr, err := data.NewArray(entries)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(fxDir, name)
	if err := arr.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func checkSpec(t *testing.T, src string) *check.Checked {
	t.Helper()
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := check.Check(s, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperIfThenElseExample(t *testing.T) {
	// The paper's §IV-C running example: TimeDomain {0,1,2}, a = [3,6,8],
	// Render(t) = IfThenElse(a[t] < 5, vid1[t], vid2[t]) rewrites to
	// match { t in {0} => vid1[t], t in {1,2} => vid2[t] }.
	ann := saveArray(t, "a.json", []data.Entry{
		{T: rational.FromInt(0), V: data.NumVal(3)},
		{T: rational.FromInt(1), V: data.NumVal(6)},
		{T: rational.FromInt(2), V: data.NumVal(8)},
	})
	// Tiny fixture is 24 fps; use an explicit output to allow integer steps.
	src := fmt.Sprintf(`
		timedomain range(0, 3, 1);
		videos { vid1: %q; vid2: %q; }
		data { a: %q; }
		output { width: 160; height: 96; fps: 1; }
		render(t) = if a[t] < 5 then vid1[t] else vid2[t];`, fxVid, fxVid2, ann)
	c := checkSpec(t, src)
	out, stats, err := Rewrite(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped {
		t.Fatal("should not skip")
	}
	if stats.Applied["ifthenelse"] != 3 {
		t.Errorf("applied = %v", stats.Applied)
	}
	m, ok := out.Render.(vql.Match)
	if !ok {
		t.Fatalf("rewritten render = %s", out.Render)
	}
	if len(m.Arms) != 2 {
		t.Fatalf("arms = %d: %s", len(m.Arms), out.Render)
	}
	want0 := vql.VideoRef{Name: "vid1", Index: vql.TimeVar{}}
	want1 := vql.VideoRef{Name: "vid2", Index: vql.TimeVar{}}
	if !m.Arms[0].Body.EqualExpr(want0) {
		t.Errorf("arm 0 = %s", m.Arms[0].Body)
	}
	if !m.Arms[1].Body.EqualExpr(want1) {
		t.Errorf("arm 1 = %s", m.Arms[1].Body)
	}
	if !m.Arms[0].Guard.Contains(rational.Zero) || m.Arms[0].Guard.Count() != 1 {
		t.Errorf("arm 0 guard = %s", m.Arms[0].Guard)
	}
	if !m.Arms[1].Guard.Contains(rational.One) || !m.Arms[1].Guard.Contains(rational.FromInt(2)) {
		t.Errorf("arm 1 guard = %s", m.Arms[1].Guard)
	}
	if stats.ArmsBefore != 1 || stats.ArmsAfter != 2 {
		t.Errorf("arm counts %d -> %d", stats.ArmsBefore, stats.ArmsAfter)
	}
}

func TestBoundingBoxIdentityRewrite(t *testing.T) {
	// Boxes present only on frames 12..23 of a 48-frame domain: the
	// rewriter should produce plain-reference arms elsewhere.
	var entries []data.Entry
	for i := 0; i < 48; i++ {
		v := data.BoxesVal(nil)
		if i >= 12 && i < 24 {
			v = data.BoxesVal([]raster.Box{{X: 8, Y: 8, W: 24, H: 24, Class: "OBJ", Track: 1}})
		}
		entries = append(entries, data.Entry{T: rational.New(int64(i), 24), V: v})
	}
	ann := saveArray(t, "bb.json", entries)
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; }
		data { bb: %q; }
		render(t) = boxes(v[t], bb[t]);`, fxVid, ann)
	c := checkSpec(t, src)
	out, stats, err := Rewrite(c)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := out.Render.(vql.Match)
	if !ok || len(m.Arms) != 3 {
		t.Fatalf("render = %s", out.Render)
	}
	plain := vql.VideoRef{Name: "v", Index: vql.TimeVar{}}
	boxed := vql.Call{Name: "boxes", Args: []vql.Expr{plain, vql.DataRef{Name: "bb", Index: vql.TimeVar{}}}}
	if !m.Arms[0].Body.EqualExpr(plain) || !m.Arms[2].Body.EqualExpr(plain) {
		t.Errorf("outer arms should be identity: %s | %s", m.Arms[0].Body, m.Arms[2].Body)
	}
	if !m.Arms[1].Body.EqualExpr(boxed) {
		t.Errorf("middle arm should keep boxes: %s", m.Arms[1].Body)
	}
	if stats.Applied["boxes"] != 36 {
		t.Errorf("applied = %v", stats.Applied)
	}
	// Guards partition [0,2) at 12/24 and 24/24.
	if !m.Arms[1].Guard.Contains(rational.New(12, 24)) || m.Arms[1].Guard.Contains(rational.New(24, 24)) {
		t.Errorf("arm 1 guard = %s", m.Arms[1].Guard)
	}
}

func TestRewriteSkipsDataFreeSpecs(t *testing.T) {
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; }
		render(t) = blur(v[t], 1.5);`, fxVid)
	c := checkSpec(t, src)
	out, stats, err := Rewrite(c)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Skipped {
		t.Error("data-free spec should skip")
	}
	if out != c.Spec {
		t.Error("skipped rewrite should return the input spec")
	}
}

func TestRewriteConstantFoldsZoom(t *testing.T) {
	// zoom(v[t], 1) has a DDE (identity when factor == 1) and a constant
	// argument — the rewriter folds it without any data arrays.
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; }
		render(t) = zoom(v[t], 1);`, fxVid)
	c := checkSpec(t, src)
	out, stats, err := Rewrite(c)
	if err != nil {
		t.Fatal(err)
	}
	want := vql.VideoRef{Name: "v", Index: vql.TimeVar{}}
	if !out.Render.EqualExpr(want) {
		t.Errorf("render = %s", out.Render)
	}
	if stats.Applied["zoom"] != 1 {
		t.Errorf("applied = %v (static fold fires once)", stats.Applied)
	}
	if stats.ArmsAfter != 1 {
		t.Errorf("arms after = %d", stats.ArmsAfter)
	}
}

func TestRewritePreservesSemantics(t *testing.T) {
	// Evaluating the original and rewritten specs at every domain time
	// must agree (frame identity via data-free structural checks: both
	// sides must pick the same video reference).
	ann := saveArray(t, "cond.json", []data.Entry{
		{T: rational.FromInt(0), V: data.BoolVal(true)},
		{T: rational.FromInt(1), V: data.BoolVal(false)},
		{T: rational.FromInt(2), V: data.BoolVal(true)},
		{T: rational.FromInt(3), V: data.BoolVal(true)},
	})
	src := fmt.Sprintf(`
		timedomain range(0, 4, 1);
		videos { vid1: %q; vid2: %q; }
		data { c: %q; }
		output { width: 160; height: 96; fps: 1; }
		render(t) = ifthenelse(c[t], vid1[t], vid2[t]);`, fxVid, fxVid2, ann)
	c := checkSpec(t, src)
	out, _, err := Rewrite(c)
	if err != nil {
		t.Fatal(err)
	}
	wantVids := []string{"vid1", "vid2", "vid1", "vid1"}
	for i, want := range wantVids {
		at := rational.FromInt(int64(i))
		body := out.RenderFor(at)
		vr, ok := body.(vql.VideoRef)
		if !ok {
			t.Fatalf("t=%d body = %s", i, body)
		}
		if vr.Name != want {
			t.Errorf("t=%d selects %s, want %s", i, vr.Name, want)
		}
	}
}

func TestRewriteNestedDDE(t *testing.T) {
	// boxes inside ifthenelse: both levels rewrite.
	ann := saveArray(t, "nested.json", []data.Entry{
		{T: rational.FromInt(0), V: data.BoxesVal(nil)},
		{T: rational.FromInt(1), V: data.BoxesVal([]raster.Box{{X: 1, Y: 1, W: 4, H: 4}})},
	})
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1);
		videos { v: %q; }
		data { bb: %q; }
		output { width: 160; height: 96; fps: 1; }
		render(t) = ifthenelse(count(bb[t]) > 0, boxes(v[t], bb[t]), v[t]);`, fxVid, ann)
	c := checkSpec(t, src)
	out, _, err := Rewrite(c)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := out.Render.(vql.Match)
	if !ok || len(m.Arms) != 2 {
		t.Fatalf("render = %s", out.Render)
	}
	// t=0: no boxes -> both the inner boxes() and outer ifthenelse
	// collapse to v[t].
	if _, isRef := m.Arms[0].Body.(vql.VideoRef); !isRef {
		t.Errorf("arm 0 = %s", m.Arms[0].Body)
	}
	// t=1: boxes stay.
	if call, isCall := m.Arms[1].Body.(vql.Call); !isCall || call.Name != "boxes" {
		t.Errorf("arm 1 = %s", m.Arms[1].Body)
	}
}

func TestRewriteMatchInputPartitioning(t *testing.T) {
	// A spec that is already a match: rewriting respects arm boundaries
	// and still merges equal neighbours.
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; w: %q; }
		render(t) = match t {
			t in range(0, 1, 1/24) => zoom(v[t], 1),
			t in range(1, 2, 1/24) => zoom(w[t], 1),
		};`, fxVid, fxVid2)
	c := checkSpec(t, src)
	out, stats, err := Rewrite(c)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := out.Render.(vql.Match)
	if !ok || len(m.Arms) != 2 {
		t.Fatalf("render = %s", out.Render)
	}
	if stats.ArmsBefore != 2 || stats.ArmsAfter != 2 {
		t.Errorf("arms %d -> %d", stats.ArmsBefore, stats.ArmsAfter)
	}
	if _, isRef := m.Arms[0].Body.(vql.VideoRef); !isRef {
		t.Errorf("zoom(,1) should fold away: %s", m.Arms[0].Body)
	}
}
