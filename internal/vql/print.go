package vql

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders a spec in the textual grammar accepted by Parse, so that
// Parse(Format(s)) reproduces s (the parse∘print round-trip property).
func Format(s *Spec) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "timedomain range(%s, %s, %s);\n",
		s.TimeDomain.Start, s.TimeDomain.End, s.TimeDomain.Step)
	writeBindings(&sb, "videos", s.Videos)
	writeBindings(&sb, "data", s.DataFiles)
	writeBindings(&sb, "sql", s.DataSQL)
	if s.Output != nil {
		fmt.Fprintf(&sb, "output { width: %d; height: %d; fps: %s;", s.Output.Width, s.Output.Height, s.Output.FPS)
		if s.Output.Quality != 0 {
			fmt.Fprintf(&sb, " quality: %d;", s.Output.Quality)
		}
		if s.Output.GOP != 0 {
			fmt.Fprintf(&sb, " gop: %d;", s.Output.GOP)
		}
		if s.Output.Level != 0 {
			fmt.Fprintf(&sb, " level: %d;", s.Output.Level)
		}
		sb.WriteString(" }\n")
	}
	fmt.Fprintf(&sb, "render(t) = %s;\n", FormatExpr(s.Render))
	return sb.String()
}

func writeBindings(sb *strings.Builder, section string, m map[string]string) {
	if len(m) == 0 {
		return
	}
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintf(sb, "%s {\n", section)
	for _, k := range names {
		fmt.Fprintf(sb, "  %s: %s;\n", k, quoteVQL(m[k]))
	}
	sb.WriteString("}\n")
}

// FormatExpr renders an expression in DSL syntax. It differs from
// Expr.String only in how matches are indented; both parse back to the
// same tree.
func FormatExpr(e Expr) string { return e.String() }
