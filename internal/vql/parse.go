package vql

import (
	"fmt"

	"v2v/internal/rational"
)

// Parse parses the textual spec grammar:
//
//	timedomain range(0, 600, 1/30);
//	videos { vid1: "video1.vmf"; vid2: "video2.vmf"; }
//	data   { vid1_bb: "annot1.json"; }
//	sql    { counts: "SELECT ts, n FROM t"; }
//	output { width: 1280; height: 720; fps: 30; }   // optional
//	render(t) = match t {
//	    t in range(0, 300, 1/30) => vid1[t],
//	    t in {0, 1, 2}           => zoom(vid2[t], 2),
//	};
//
// Expressions support exact rational arithmetic (integer division folds to
// a rational constant, so 13463/30 is a number), comparisons, and/or/not,
// if-then-else (sugar for ifthenelse), transform calls, and time-indexing
// of videos and data arrays. Video vs. data references are resolved against
// the declaration sections.
func Parse(src string) (*Spec, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &specParser{toks: toks}
	spec, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	if err := spec.ResolveRefs(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ParseExpr parses a single expression (used by tests and UDF tooling).
// References are not resolved (all indexing parses as VideoRef).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &specParser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tEOF {
		return nil, fmt.Errorf("vql: trailing input at %d:%d: %s", t.line, t.col, t)
	}
	return e, nil
}

type specParser struct {
	toks  []tok
	pos   int
	depth int
}

// maxParseDepth bounds expression nesting so adversarial input (deeply
// nested parens, long `not not ...` chains) fails with a parse error
// instead of exhausting the goroutine stack.
const maxParseDepth = 200

func (p *specParser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return fmt.Errorf("vql: expression nesting exceeds %d levels", maxParseDepth)
	}
	return nil
}

func (p *specParser) leave() { p.depth-- }

func (p *specParser) peek() tok { return p.toks[p.pos] }

func (p *specParser) next() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *specParser) errAt(t tok, format string, args ...any) error {
	return fmt.Errorf("vql:%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *specParser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return p.errAt(t, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *specParser) acceptPunct(s string) bool {
	if t := p.peek(); t.kind == tPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *specParser) acceptIdent(s string) bool {
	if t := p.peek(); t.kind == tIdent && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *specParser) parseSpec() (*Spec, error) {
	spec := &Spec{
		Videos:    map[string]string{},
		DataFiles: map[string]string{},
		DataSQL:   map[string]string{},
	}
	var haveDomain, haveRender bool
	for {
		t := p.peek()
		if t.kind == tEOF {
			break
		}
		if t.kind != tIdent {
			return nil, p.errAt(t, "expected a section keyword, got %s", t)
		}
		switch t.text {
		case "timedomain":
			p.next()
			p.acceptPunct(":")
			r, err := p.parseRangeLiteral()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			spec.TimeDomain = r
			haveDomain = true
		case "videos":
			p.next()
			if err := p.parseBindings(spec.Videos); err != nil {
				return nil, err
			}
		case "data":
			p.next()
			if err := p.parseBindings(spec.DataFiles); err != nil {
				return nil, err
			}
		case "sql":
			p.next()
			if err := p.parseBindings(spec.DataSQL); err != nil {
				return nil, err
			}
		case "output":
			p.next()
			of, err := p.parseOutput()
			if err != nil {
				return nil, err
			}
			spec.Output = of
		case "render":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			tv := p.next()
			if tv.kind != tIdent || tv.text != "t" {
				return nil, p.errAt(tv, "render parameter must be t")
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			spec.Render = e
			haveRender = true
		default:
			return nil, p.errAt(t, "unknown section %q", t.text)
		}
	}
	if !haveDomain {
		return nil, fmt.Errorf("vql: spec is missing a timedomain")
	}
	if !haveRender {
		return nil, fmt.Errorf("vql: spec is missing a render function")
	}
	return spec, nil
}

// parseBindings parses `{ name: "value"; ... }` into dst.
func (p *specParser) parseBindings(dst map[string]string) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		name := p.next()
		if name.kind != tIdent {
			return p.errAt(name, "expected a name, got %s", name)
		}
		if dslKeywords[name.text] || name.text == "t" {
			return p.errAt(name, "%q is reserved", name.text)
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		val := p.next()
		if val.kind != tString {
			return p.errAt(val, "expected a string, got %s", val)
		}
		if _, dup := dst[name.text]; dup {
			return p.errAt(name, "duplicate binding %q", name.text)
		}
		dst[name.text] = val.text
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return nil
}

func (p *specParser) parseOutput() (*OutputFormat, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	of := &OutputFormat{}
	for !p.acceptPunct("}") {
		key := p.next()
		if key.kind != tIdent {
			return nil, p.errAt(key, "expected an output field, got %s", key)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		v, err := p.parseConstNum()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		switch key.text {
		case "width":
			of.Width = int(v.Floor())
		case "height":
			of.Height = int(v.Floor())
		case "fps":
			of.FPS = v
		case "quality":
			of.Quality = int(v.Floor())
		case "gop":
			of.GOP = int(v.Floor())
		case "level":
			of.Level = int(v.Floor())
		default:
			return nil, p.errAt(key, "unknown output field %q", key.text)
		}
	}
	return of, nil
}

// parseRangeLiteral parses range(a, b, step) with constant bounds.
func (p *specParser) parseRangeLiteral() (rational.Range, error) {
	kw := p.next()
	if kw.kind != tIdent || kw.text != "range" {
		return rational.Range{}, p.errAt(kw, "expected range(...), got %s", kw)
	}
	if err := p.expectPunct("("); err != nil {
		return rational.Range{}, err
	}
	start, err := p.parseConstNum()
	if err != nil {
		return rational.Range{}, err
	}
	if err := p.expectPunct(","); err != nil {
		return rational.Range{}, err
	}
	end, err := p.parseConstNum()
	if err != nil {
		return rational.Range{}, err
	}
	if err := p.expectPunct(","); err != nil {
		return rational.Range{}, err
	}
	step, err := p.parseConstNum()
	if err != nil {
		return rational.Range{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return rational.Range{}, err
	}
	if step.Sign() <= 0 {
		return rational.Range{}, p.errAt(kw, "range step must be positive, got %s", step)
	}
	return rational.NewRange(start, end, step), nil
}

// parseConstNum parses an expression and constant-folds it to a rational.
func (p *specParser) parseConstNum() (rational.Rat, error) {
	at := p.peek()
	e, err := p.parseExpr()
	if err != nil {
		return rational.Rat{}, err
	}
	v, err := constNum(e)
	if err != nil {
		return rational.Rat{}, p.errAt(at, "%v", err)
	}
	return v, nil
}

// constNum evaluates a constant numeric expression.
func constNum(e Expr) (rational.Rat, error) {
	if UsesTime(e) {
		return rational.Rat{}, fmt.Errorf("expression must be constant (no t)")
	}
	v, err := Eval(e, &Env{})
	if err != nil {
		return rational.Rat{}, err
	}
	if v.Type != TypeNum {
		return rational.Rat{}, fmt.Errorf("expected a number, got %v", v.Type)
	}
	return v.Num, nil
}

// --- expression grammar ---
// expr    := or
// or      := and ('or' and)*
// and     := cmp ('and' cmp)*
// cmp     := add (relop add)?
// add     := mul (('+'|'-') mul)*
// mul     := unary (('*'|'/') unary)*
// unary   := '-' unary | 'not' unary | postfix
// postfix := primary ('[' expr ']')*
// primary := number | string | true | false | null | t | ident
//          | ident '(' args ')' | '(' expr ')'
//          | 'if' expr 'then' expr 'else' expr | match

func (p *specParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *specParser) parseOr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *specParser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("and") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = BinOp{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var relOps = map[string]BinOpKind{
	"<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE, "==": OpEQ, "!=": OpNE,
}

func (p *specParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tPunct {
		if op, ok := relOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *specParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = foldNum(BinOp{Op: OpAdd, L: l, R: r})
		case p.acceptPunct("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = foldNum(BinOp{Op: OpSub, L: l, R: r})
		default:
			return l, nil
		}
	}
}

func (p *specParser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = foldNum(BinOp{Op: OpMul, L: l, R: r})
		case p.acceptPunct("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = foldNum(BinOp{Op: OpDiv, L: l, R: r})
		default:
			return l, nil
		}
	}
}

// foldNum folds binary arithmetic over numeric literals so that 13463/30
// parses as one exact rational rather than a division operation.
func foldNum(b BinOp) Expr {
	l, lok := b.L.(NumLit)
	r, rok := b.R.(NumLit)
	if !lok || !rok {
		return b
	}
	switch b.Op {
	case OpAdd:
		return NumLit{l.V.Add(r.V)}
	case OpSub:
		return NumLit{l.V.Sub(r.V)}
	case OpMul:
		return NumLit{l.V.Mul(r.V)}
	case OpDiv:
		if r.V.Sign() == 0 {
			return b // evaluation will report the error with position-free context
		}
		return NumLit{l.V.Div(r.V)}
	}
	return b
}

func (p *specParser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.acceptPunct("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := e.(NumLit); ok {
			return NumLit{n.V.Neg()}, nil
		}
		return Neg{E: e}, nil
	}
	if p.acceptIdent("not") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.parsePostfix()
}

func (p *specParser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("[") {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		ref, ok := e.(rawName)
		if !ok {
			return nil, fmt.Errorf("vql: only named videos/data can be indexed, not %s", e)
		}
		e = VideoRef{Name: ref.name, Index: idx} // resolved to DataRef later
	}
	if rn, ok := e.(rawName); ok {
		return nil, fmt.Errorf("vql: bare name %q must be indexed or called", rn.name)
	}
	return e, nil
}

// rawName is a transient parse node for an identifier awaiting indexing;
// it never survives parsing.
type rawName struct{ name string }

func (r rawName) String() string      { return r.name }
func (r rawName) EqualExpr(Expr) bool { return false }

func (p *specParser) parsePrimary() (Expr, error) {
	t := p.next()
	switch {
	case t.kind == tNumber:
		v, err := rational.Parse(t.text)
		if err != nil {
			return nil, p.errAt(t, "bad number: %v", err)
		}
		return NumLit{v}, nil
	case t.kind == tString:
		return StrLit{t.text}, nil
	case t.kind == tPunct && t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tIdent:
		switch t.text {
		case "true":
			return BoolLit{true}, nil
		case "false":
			return BoolLit{false}, nil
		case "null":
			return NullLit{}, nil
		case "t":
			return TimeVar{}, nil
		case "if":
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ifTok := p.next()
			if ifTok.kind != tIdent || ifTok.text != "then" {
				return nil, p.errAt(ifTok, "expected then, got %s", ifTok)
			}
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elTok := p.next()
			if elTok.kind != tIdent || elTok.text != "else" {
				return nil, p.errAt(elTok, "expected else, got %s", elTok)
			}
			b, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return Call{Name: "ifthenelse", Args: []Expr{cond, a, b}}, nil
		case "match":
			return p.parseMatch(t)
		case "range":
			return nil, p.errAt(t, "range(...) is only valid as a match guard or timedomain")
		default:
			if p.acceptPunct("(") {
				var args []Expr
				if !p.acceptPunct(")") {
					for {
						a, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						args = append(args, a)
						if p.acceptPunct(")") {
							break
						}
						if err := p.expectPunct(","); err != nil {
							return nil, err
						}
					}
				}
				return Call{Name: t.text, Args: args}, nil
			}
			return rawName{name: t.text}, nil
		}
	default:
		return nil, p.errAt(t, "unexpected %s", t)
	}
}

func (p *specParser) parseMatch(kw tok) (Expr, error) {
	tv := p.next()
	if tv.kind != tIdent || tv.text != "t" {
		return nil, p.errAt(tv, "match subject must be t")
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var arms []MatchArm
	for !p.acceptPunct("}") {
		// Optional "t in" prefix (paper syntax).
		if p.acceptIdent("t") {
			inTok := p.next()
			if inTok.kind != tIdent || inTok.text != "in" {
				return nil, p.errAt(inTok, "expected in, got %s", inTok)
			}
		}
		g, err := p.parseGuard()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("=>"); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		arms = append(arms, MatchArm{Guard: g, Body: body})
		if !p.acceptPunct(",") {
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			break
		}
	}
	if len(arms) == 0 {
		return nil, p.errAt(kw, "match needs at least one arm")
	}
	return Match{Arms: arms}, nil
}

func (p *specParser) parseGuard() (Guard, error) {
	t := p.peek()
	if t.kind == tIdent && t.text == "range" {
		r, err := p.parseRangeLiteral()
		if err != nil {
			return Guard{}, err
		}
		return RangeGuard(r), nil
	}
	if t.kind == tPunct && t.text == "{" {
		p.next()
		var times []rational.Rat
		for !p.acceptPunct("}") {
			v, err := p.parseConstNum()
			if err != nil {
				return Guard{}, err
			}
			times = append(times, v)
			if !p.acceptPunct(",") {
				if err := p.expectPunct("}"); err != nil {
					return Guard{}, err
				}
				break
			}
		}
		return SetGuard(times), nil
	}
	return Guard{}, p.errAt(t, "expected range(...) or {times} guard, got %s", t)
}
