package vql

import (
	"encoding/json"
	"fmt"

	"v2v/internal/rational"
)

// JSON spec serialization. The paper's executable reads serialized JSON
// specs; this is that format. Expressions encode as tagged objects keyed
// by "op".

type jsonSpec struct {
	TimeDomain jsonRange         `json:"timedomain"`
	Videos     map[string]string `json:"videos,omitempty"`
	DataFiles  map[string]string `json:"data,omitempty"`
	DataSQL    map[string]string `json:"sql,omitempty"`
	Output     *OutputFormat     `json:"output,omitempty"`
	Render     json.RawMessage   `json:"render"`
}

type jsonRange struct {
	Start rational.Rat `json:"start"`
	End   rational.Rat `json:"end"`
	Step  rational.Rat `json:"step"`
}

type jsonExpr struct {
	Op    string            `json:"op"`
	V     json.RawMessage   `json:"v,omitempty"`
	Kind  string            `json:"kind,omitempty"`
	Name  string            `json:"name,omitempty"`
	L     json.RawMessage   `json:"l,omitempty"`
	R     json.RawMessage   `json:"r,omitempty"`
	E     json.RawMessage   `json:"e,omitempty"`
	Index json.RawMessage   `json:"index,omitempty"`
	Args  []json.RawMessage `json:"args,omitempty"`
	Arms  []jsonArm         `json:"arms,omitempty"`
}

type jsonArm struct {
	Range *jsonRange      `json:"range,omitempty"`
	Set   []rational.Rat  `json:"set,omitempty"`
	Body  json.RawMessage `json:"body"`
}

// MarshalSpecJSON encodes a spec in the JSON spec format.
func MarshalSpecJSON(s *Spec) ([]byte, error) {
	render, err := marshalExpr(s.Render)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(jsonSpec{
		TimeDomain: jsonRange{s.TimeDomain.Start, s.TimeDomain.End, s.TimeDomain.Step},
		Videos:     s.Videos,
		DataFiles:  s.DataFiles,
		DataSQL:    s.DataSQL,
		Output:     s.Output,
		Render:     render,
	}, "", "  ")
}

// UnmarshalSpecJSON decodes the JSON spec format and resolves video/data
// references against the declarations.
func UnmarshalSpecJSON(raw []byte) (*Spec, error) {
	var js jsonSpec
	if err := json.Unmarshal(raw, &js); err != nil {
		return nil, fmt.Errorf("vql: parse spec JSON: %w", err)
	}
	if js.Step().Sign() <= 0 {
		return nil, fmt.Errorf("vql: timedomain step must be positive")
	}
	render, err := unmarshalExpr(js.Render)
	if err != nil {
		return nil, err
	}
	s := &Spec{
		TimeDomain: rational.NewRange(js.TimeDomain.Start, js.TimeDomain.End, js.TimeDomain.Step),
		Videos:     orEmpty(js.Videos),
		DataFiles:  orEmpty(js.DataFiles),
		DataSQL:    orEmpty(js.DataSQL),
		Output:     js.Output,
		Render:     render,
	}
	if err := s.ResolveRefs(); err != nil {
		return nil, err
	}
	return s, nil
}

func (js jsonSpec) Step() rational.Rat { return js.TimeDomain.Step }

func orEmpty(m map[string]string) map[string]string {
	if m == nil {
		return map[string]string{}
	}
	return m
}

func marshalExpr(e Expr) (json.RawMessage, error) {
	var je jsonExpr
	switch n := e.(type) {
	case TimeVar:
		je = jsonExpr{Op: "time"}
	case NumLit:
		v, _ := json.Marshal(n.V)
		je = jsonExpr{Op: "num", V: v}
	case StrLit:
		v, _ := json.Marshal(n.V)
		je = jsonExpr{Op: "str", V: v}
	case BoolLit:
		v, _ := json.Marshal(n.V)
		je = jsonExpr{Op: "bool", V: v}
	case NullLit:
		je = jsonExpr{Op: "null"}
	case BinOp:
		l, err := marshalExpr(n.L)
		if err != nil {
			return nil, err
		}
		r, err := marshalExpr(n.R)
		if err != nil {
			return nil, err
		}
		je = jsonExpr{Op: "bin", Kind: binOpNames[n.Op], L: l, R: r}
	case Not:
		inner, err := marshalExpr(n.E)
		if err != nil {
			return nil, err
		}
		je = jsonExpr{Op: "not", E: inner}
	case Neg:
		inner, err := marshalExpr(n.E)
		if err != nil {
			return nil, err
		}
		je = jsonExpr{Op: "neg", E: inner}
	case VideoRef:
		idx, err := marshalExpr(n.Index)
		if err != nil {
			return nil, err
		}
		je = jsonExpr{Op: "video", Name: n.Name, Index: idx}
	case DataRef:
		idx, err := marshalExpr(n.Index)
		if err != nil {
			return nil, err
		}
		je = jsonExpr{Op: "data", Name: n.Name, Index: idx}
	case Call:
		args := make([]json.RawMessage, len(n.Args))
		for i, a := range n.Args {
			ja, err := marshalExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = ja
		}
		je = jsonExpr{Op: "call", Name: n.Name, Args: args}
	case Match:
		arms := make([]jsonArm, len(n.Arms))
		for i, a := range n.Arms {
			body, err := marshalExpr(a.Body)
			if err != nil {
				return nil, err
			}
			if a.Guard.IsRange {
				r := jsonRange{a.Guard.Range.Start, a.Guard.Range.End, a.Guard.Range.Step}
				arms[i] = jsonArm{Range: &r, Body: body}
			} else {
				arms[i] = jsonArm{Set: a.Guard.Set, Body: body}
			}
		}
		je = jsonExpr{Op: "match", Arms: arms}
	default:
		return nil, fmt.Errorf("vql: cannot marshal %T", e)
	}
	return json.Marshal(je)
}

var binOpByName = func() map[string]BinOpKind {
	m := make(map[string]BinOpKind, len(binOpNames))
	for k, v := range binOpNames {
		m[v] = k
	}
	return m
}()

func unmarshalExpr(raw json.RawMessage) (Expr, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("vql: missing expression")
	}
	var je jsonExpr
	if err := json.Unmarshal(raw, &je); err != nil {
		return nil, fmt.Errorf("vql: parse expression: %w", err)
	}
	switch je.Op {
	case "time":
		return TimeVar{}, nil
	case "num":
		var v rational.Rat
		if err := json.Unmarshal(je.V, &v); err != nil {
			return nil, err
		}
		return NumLit{v}, nil
	case "str":
		var v string
		if err := json.Unmarshal(je.V, &v); err != nil {
			return nil, err
		}
		return StrLit{v}, nil
	case "bool":
		var v bool
		if err := json.Unmarshal(je.V, &v); err != nil {
			return nil, err
		}
		return BoolLit{v}, nil
	case "null":
		return NullLit{}, nil
	case "bin":
		op, ok := binOpByName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("vql: unknown operator %q", je.Kind)
		}
		l, err := unmarshalExpr(je.L)
		if err != nil {
			return nil, err
		}
		r, err := unmarshalExpr(je.R)
		if err != nil {
			return nil, err
		}
		return BinOp{Op: op, L: l, R: r}, nil
	case "not":
		inner, err := unmarshalExpr(je.E)
		if err != nil {
			return nil, err
		}
		return Not{E: inner}, nil
	case "neg":
		inner, err := unmarshalExpr(je.E)
		if err != nil {
			return nil, err
		}
		return Neg{E: inner}, nil
	case "video":
		idx, err := unmarshalExpr(je.Index)
		if err != nil {
			return nil, err
		}
		return VideoRef{Name: je.Name, Index: idx}, nil
	case "data":
		idx, err := unmarshalExpr(je.Index)
		if err != nil {
			return nil, err
		}
		return DataRef{Name: je.Name, Index: idx}, nil
	case "call":
		args := make([]Expr, len(je.Args))
		for i, a := range je.Args {
			ja, err := unmarshalExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = ja
		}
		return Call{Name: je.Name, Args: args}, nil
	case "match":
		arms := make([]MatchArm, len(je.Arms))
		for i, a := range je.Arms {
			body, err := unmarshalExpr(a.Body)
			if err != nil {
				return nil, err
			}
			var g Guard
			switch {
			case a.Range != nil:
				if a.Range.Step.Sign() <= 0 {
					return nil, fmt.Errorf("vql: match arm range step must be positive")
				}
				g = RangeGuard(rational.NewRange(a.Range.Start, a.Range.End, a.Range.Step))
			default:
				g = SetGuard(a.Set)
			}
			arms[i] = MatchArm{Guard: g, Body: body}
		}
		return Match{Arms: arms}, nil
	default:
		return nil, fmt.Errorf("vql: unknown expression op %q", je.Op)
	}
}
