package vql

import (
	"math/rand"
	"testing"

	"v2v/internal/rational"
)

// randExpr generates a random well-formed expression of bounded depth,
// using the video names v/w and the data name bb (left unresolved).
func randExpr(rnd *rand.Rand, depth int, wantFrame bool) Expr {
	if wantFrame {
		if depth <= 0 || rnd.Intn(3) == 0 {
			name := "v"
			if rnd.Intn(2) == 0 {
				name = "w"
			}
			return VideoRef{Name: name, Index: randNumExpr(rnd, depth-1)}
		}
		switch rnd.Intn(6) {
		case 0:
			return Call{Name: "zoom", Args: []Expr{randExpr(rnd, depth-1, true), randPosNum(rnd)}}
		case 1:
			return Call{Name: "blur", Args: []Expr{randExpr(rnd, depth-1, true), randPosNum(rnd)}}
		case 2:
			return Call{Name: "grid", Args: []Expr{
				randExpr(rnd, depth-1, true), randExpr(rnd, depth-1, true),
				randExpr(rnd, depth-1, true), randExpr(rnd, depth-1, true),
			}}
		case 3:
			return Call{Name: "boxes", Args: []Expr{
				randExpr(rnd, depth-1, true),
				VideoRef{Name: "bb", Index: TimeVar{}}, // resolves to data later
			}}
		case 4:
			return Call{Name: "ifthenelse", Args: []Expr{
				randBoolExpr(rnd, depth-1),
				randExpr(rnd, depth-1, true),
				randExpr(rnd, depth-1, true),
			}}
		default:
			return Call{Name: "grade", Args: []Expr{
				randExpr(rnd, depth-1, true), randNumLit(rnd), randPosNum(rnd), randPosNum(rnd),
			}}
		}
	}
	return randNumExpr(rnd, depth)
}

func randNumLit(rnd *rand.Rand) Expr {
	return NumLit{rational.New(rnd.Int63n(200)-100, rnd.Int63n(30)+1)}
}

func randPosNum(rnd *rand.Rand) Expr {
	return NumLit{rational.New(rnd.Int63n(50)+1, rnd.Int63n(10)+1)}
}

func randNumExpr(rnd *rand.Rand, depth int) Expr {
	if depth <= 0 || rnd.Intn(2) == 0 {
		if rnd.Intn(2) == 0 {
			return TimeVar{}
		}
		return randNumLit(rnd)
	}
	ops := []BinOpKind{OpAdd, OpSub, OpMul}
	return BinOp{Op: ops[rnd.Intn(len(ops))], L: randNumExpr(rnd, depth-1), R: randNumExpr(rnd, depth-1)}
}

func randBoolExpr(rnd *rand.Rand, depth int) Expr {
	cmp := []BinOpKind{OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE}
	e := Expr(BinOp{Op: cmp[rnd.Intn(len(cmp))], L: randNumExpr(rnd, depth), R: randNumExpr(rnd, depth)})
	if rnd.Intn(3) == 0 {
		e = Not{E: e}
	}
	if depth > 0 && rnd.Intn(3) == 0 {
		logic := []BinOpKind{OpAnd, OpOr}
		e = BinOp{Op: logic[rnd.Intn(2)], L: e, R: randBoolExpr(rnd, depth-1)}
	}
	return e
}

// TestPropertyExprPrintParseRoundTrip: parsing the printed form of a
// random expression reproduces the expression. (NumLit folding means the
// printed tree is already in folded normal form, so the round trip is
// exact.)
func TestPropertyExprPrintParseRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		e := randExpr(rnd, 3, trial%2 == 0)
		text := e.String()
		got, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("trial %d: reparse %q: %v", trial, text, err)
		}
		if !got.EqualExpr(e) {
			// Arithmetic over literals folds at parse time; accept a fold
			// by comparing evaluations at several times instead.
			if !exprsAgree(t, e, got) {
				t.Fatalf("trial %d: %q parsed to %q", trial, text, got)
			}
		}
	}
}

// exprsAgree compares two numeric/bool expressions by evaluation on a few
// sample times (frame expressions compare structurally only, so callers
// reach here only for folded numeric subtrees).
func exprsAgree(t *testing.T, a, b Expr) bool {
	t.Helper()
	for _, at := range []rational.Rat{rational.Zero, rational.One, rational.New(7, 3)} {
		va, errA := Eval(a, &Env{T: at, Frames: fakeFrames{w: 32, h: 32}, Data: fakeData{}})
		vb, errB := Eval(b, &Env{T: at, Frames: fakeFrames{w: 32, h: 32}, Data: fakeData{}})
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			continue
		}
		if va.Type != vb.Type {
			return false
		}
		switch va.Type {
		case TypeNum:
			if !va.Num.Equal(vb.Num) {
				return false
			}
		case TypeBool:
			if va.Bool != vb.Bool {
				return false
			}
		}
	}
	return true
}

// TestPropertySpecJSONRoundTrip: random specs survive JSON serialization.
func TestPropertySpecJSONRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		spec := &Spec{
			TimeDomain: rational.NewRange(rational.Zero, rational.FromInt(rnd.Int63n(10)+1), rational.New(1, rnd.Int63n(30)+1)),
			Videos:     map[string]string{"v": "v.vmf", "w": "w.vmf"},
			DataFiles:  map[string]string{"bb": "bb.json"},
			DataSQL:    map[string]string{},
		}
		arms := rnd.Intn(3) + 1
		var match Match
		for a := 0; a < arms; a++ {
			match.Arms = append(match.Arms, MatchArm{
				Guard: RangeGuard(rational.NewRange(
					rational.FromInt(int64(a)), rational.FromInt(int64(a)+1), rational.New(1, 8))),
				Body: randExpr(rnd, 2, true),
			})
		}
		spec.Render = match
		if err := spec.ResolveRefs(); err != nil {
			t.Fatalf("trial %d: resolve: %v", trial, err)
		}
		raw, err := MarshalSpecJSON(spec)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		got, err := UnmarshalSpecJSON(raw)
		if err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if !got.Render.EqualExpr(spec.Render) {
			t.Fatalf("trial %d: render differs:\n%s\nvs\n%s", trial, spec.Render, got.Render)
		}
		if got.TimeDomain.Count() != spec.TimeDomain.Count() {
			t.Fatalf("trial %d: domain differs", trial)
		}
	}
}

// TestPropertySpecFormatParseRoundTrip: random specs survive the textual
// grammar.
func TestPropertySpecFormatParseRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(55))
	for trial := 0; trial < 100; trial++ {
		spec := &Spec{
			TimeDomain: rational.NewRange(rational.Zero, rational.FromInt(2), rational.New(1, 12)),
			Videos:     map[string]string{"v": "v.vmf", "w": "w.vmf"},
			DataFiles:  map[string]string{"bb": "bb.json"},
			DataSQL:    map[string]string{},
			Render:     randExpr(rnd, 3, true),
		}
		if err := spec.ResolveRefs(); err != nil {
			t.Fatal(err)
		}
		text := Format(spec)
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: reparse: %v\n%s", trial, err, text)
		}
		// Parsing folds constant arithmetic, so the first reparse is the
		// normal form; a second round trip must be exact.
		again, err := Parse(Format(got))
		if err != nil {
			t.Fatalf("trial %d: second reparse: %v", trial, err)
		}
		if !again.Render.EqualExpr(got.Render) {
			t.Fatalf("trial %d: render not a fixpoint:\n%s\nvs\n%s", trial, got.Render, again.Render)
		}
	}
}
