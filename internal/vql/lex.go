package vql

import (
	"fmt"
	"strings"
)

// tKind enumerates DSL token kinds.
type tKind uint8

const (
	tEOF tKind = iota
	tIdent
	tNumber // integer or decimal literal text
	tString
	tPunct // ( ) { } [ ] , ; : => = + - * / < <= > >= == !=
)

type tok struct {
	kind tKind
	text string
	line int
	col  int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// dslKeywords are reserved identifiers; they lex as tIdent and the parser
// dispatches on text.
var dslKeywords = map[string]bool{
	"spec": true, "timedomain": true, "videos": true, "data": true,
	"sql": true, "output": true, "render": true, "match": true, "in": true,
	"range": true, "if": true, "then": true, "else": true, "and": true,
	"or": true, "not": true, "true": true, "false": true, "null": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("vql:%d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]tok, error) {
	l := newLexer(src)
	var toks []tok
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '"':
			line, col := l.line, l.col
			l.advance(1)
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, l.errf("unterminated string")
				}
				ch := l.src[l.pos]
				if ch == '"' {
					l.advance(1)
					break
				}
				if ch == '\\' && l.pos+1 < len(l.src) {
					next := l.src[l.pos+1]
					switch next {
					case '"', '\\':
						sb.WriteByte(next)
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						return nil, l.errf("unknown escape \\%c", next)
					}
					l.advance(2)
					continue
				}
				sb.WriteByte(ch)
				l.advance(1)
			}
			toks = append(toks, tok{tString, sb.String(), line, col})
		case c >= '0' && c <= '9':
			line, col := l.line, l.col
			j := l.pos
			for j < len(l.src) && (l.src[j] >= '0' && l.src[j] <= '9' || l.src[j] == '.') {
				j++
			}
			text := l.src[l.pos:j]
			if strings.Count(text, ".") > 1 {
				return nil, l.errf("malformed number %q", text)
			}
			l.advance(j - l.pos)
			toks = append(toks, tok{tNumber, text, line, col})
		case isLetter(c):
			line, col := l.line, l.col
			j := l.pos
			for j < len(l.src) && (isLetter(l.src[j]) || l.src[j] >= '0' && l.src[j] <= '9') {
				j++
			}
			toks = append(toks, tok{tIdent, l.src[l.pos:j], line, col})
			l.advance(j - l.pos)
		default:
			line, col := l.line, l.col
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "=>", "==", "!=", "<=", ">=":
				toks = append(toks, tok{tPunct, two, line, col})
				l.advance(2)
				continue
			}
			switch c {
			case '(', ')', '{', '}', '[', ']', ',', ';', ':', '=', '+', '-', '*', '/', '<', '>', '_':
				toks = append(toks, tok{tPunct, string(c), line, col})
				l.advance(1)
			default:
				return nil, l.errf("unexpected character %q", c)
			}
		}
	}
	toks = append(toks, tok{tEOF, "", l.line, l.col})
	return toks, nil
}

func isLetter(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// quoteVQL renders s as a string literal using exactly the escapes the
// string lexer above understands (\" \\ \n \t); every other byte passes
// through raw, which the lexer also accepts. Printing with Go's %q
// instead would emit escapes like \r that the lexer rejects, breaking
// the Parse∘Format round trip.
func quoteVQL(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
