// Package vql defines the V2V declarative video editing language: the spec
// model (§III-B of the paper), its expression AST, the transform registry
// with data-dependent equivalence functions (§IV-C), a textual grammar, and
// JSON serialization.
//
// A spec is <TimeDomain, Render, videos, data_arrays>: TimeDomain is a set
// of evenly spaced rational times; Render maps each time t to a frame
// expression over the input videos and data arrays.
package vql

import (
	"fmt"
	"strconv"

	"v2v/internal/data"
	"v2v/internal/frame"
	"v2v/internal/raster"
	"v2v/internal/rational"
)

// Type is the static type of an expression.
type Type uint8

const (
	// TypeInvalid marks an untyped or erroneous expression.
	TypeInvalid Type = iota
	// TypeFrame is a video frame.
	TypeFrame
	// TypeNum is an exact rational number (the DSL's only numeric type;
	// times, zoom factors, and coordinates are all TypeNum).
	TypeNum
	// TypeBool is a boolean.
	TypeBool
	// TypeStr is a string.
	TypeStr
	// TypeBoxes is a list of object bounding boxes.
	TypeBoxes
	// TypeNull is the type of the null literal and absent data samples.
	TypeNull
)

// String returns the DSL name of the type.
func (t Type) String() string {
	switch t {
	case TypeFrame:
		return "Frame"
	case TypeNum:
		return "Num"
	case TypeBool:
		return "Bool"
	case TypeStr:
		return "Str"
	case TypeBoxes:
		return "Boxes"
	case TypeNull:
		return "Null"
	default:
		return "Invalid"
	}
}

// Val is a runtime value produced by evaluating an expression.
type Val struct {
	Type  Type
	Frame *frame.Frame
	Num   rational.Rat
	Bool  bool
	Str   string
	Boxes []raster.Box
}

// Val constructors.
func FrameVal(f *frame.Frame) Val { return Val{Type: TypeFrame, Frame: f} }
func NumV(r rational.Rat) Val     { return Val{Type: TypeNum, Num: r} }
func BoolV(b bool) Val            { return Val{Type: TypeBool, Bool: b} }
func StrV(s string) Val           { return Val{Type: TypeStr, Str: s} }
func BoxesV(b []raster.Box) Val   { return Val{Type: TypeBoxes, Boxes: b} }
func NullV() Val                  { return Val{Type: TypeNull} }

// Truthy reports the boolean interpretation of the value, matching
// data.Value.Truthy semantics.
func (v Val) Truthy() bool {
	switch v.Type {
	case TypeBool:
		return v.Bool
	case TypeNum:
		return v.Num.Sign() != 0
	case TypeStr:
		return v.Str != ""
	case TypeBoxes:
		return len(v.Boxes) > 0
	case TypeFrame:
		return v.Frame != nil
	default:
		return false
	}
}

// Float returns the float64 approximation of a numeric value.
func (v Val) Float() float64 { return v.Num.Float() }

// Int returns the numeric value truncated toward negative infinity.
func (v Val) Int() int { return int(v.Num.Floor()) }

// String renders the value for diagnostics.
func (v Val) String() string {
	switch v.Type {
	case TypeFrame:
		if v.Frame == nil {
			return "Frame(nil)"
		}
		return fmt.Sprintf("Frame(%dx%d %v)", v.Frame.W, v.Frame.H, v.Frame.Format)
	case TypeNum:
		return v.Num.String()
	case TypeBool:
		return fmt.Sprintf("%t", v.Bool)
	case TypeStr:
		return fmt.Sprintf("%q", v.Str)
	case TypeBoxes:
		return fmt.Sprintf("boxes(%d)", len(v.Boxes))
	default:
		return "null"
	}
}

// FromData converts a relational data.Value into a runtime Val. Numbers
// convert to exact rationals through their shortest decimal rendering.
func FromData(v data.Value) Val {
	switch v.Kind {
	case data.KindBool:
		return BoolV(v.Bool)
	case data.KindNum:
		r, err := rational.Parse(formatFloat(v.Num))
		if err != nil {
			// Non-finite floats have no rational form; treat as null.
			return NullV()
		}
		return NumV(r)
	case data.KindStr:
		return StrV(v.Str)
	case data.KindBoxes:
		return BoxesV(v.Boxes)
	default:
		return NullV()
	}
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// DataKindType maps a data array element kind to the DSL type.
func DataKindType(k data.Kind) Type {
	switch k {
	case data.KindBool:
		return TypeBool
	case data.KindNum:
		return TypeNum
	case data.KindStr:
		return TypeStr
	case data.KindBoxes:
		return TypeBoxes
	default:
		return TypeNull
	}
}
