package vql

import (
	"fmt"
	"sync"

	"v2v/internal/frame"
	"v2v/internal/raster"
)

// Transform describes a registered frame transform (built-in or UDF).
//
// Eval computes the transform. DDE, when non-nil, is the paper's
// data-dependent equivalence function f_dde (§IV-C): it receives the call's
// argument expressions plus the evaluated values of every *non-frame*
// argument (frame arguments are symbolic placeholders with Type TypeFrame
// and a nil Frame) and may return a simpler equivalent expression. The
// rewriter applies DDE during its data-only first pass.
type Transform struct {
	Name     string
	Params   []Type
	Variadic bool // last param may repeat
	Result   Type
	// PreservesFormat marks transforms whose output frame has the same
	// dimensions as their first frame argument. The planner uses this to
	// keep format passthrough viable across decorated arms.
	PreservesFormat bool
	Eval            func(args []Val) (Val, error)
	DDE             func(args []Expr, vals []Val) (Expr, bool)
}

// registry holds all known transforms, keyed by lowercase name.
var (
	regMu    sync.RWMutex
	registry = map[string]*Transform{}
)

// Register adds a transform (or UDF) to the global registry. Registering a
// duplicate name panics: transform names are part of the language.
func Register(t *Transform) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[t.Name]; dup {
		panic(fmt.Sprintf("vql: transform %q already registered", t.Name))
	}
	registry[t.Name] = t
}

// Lookup finds a transform by name.
func Lookup(name string) (*Transform, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	t, ok := registry[name]
	return t, ok
}

// TransformNames returns the registered names (for error messages).
func TransformNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

// CheckArity validates an argument count against the signature.
func (t *Transform) CheckArity(n int) error {
	switch {
	case t.Variadic && n < len(t.Params):
		return fmt.Errorf("vql: %s wants at least %d args, got %d", t.Name, len(t.Params), n)
	case !t.Variadic && n != len(t.Params):
		return fmt.Errorf("vql: %s wants %d args, got %d", t.Name, len(t.Params), n)
	}
	return nil
}

// ParamType returns the declared type of argument i, handling variadics.
func (t *Transform) ParamType(i int) Type {
	if i >= len(t.Params) {
		return t.Params[len(t.Params)-1]
	}
	return t.Params[i]
}

// argFrame extracts a frame argument.
func argFrame(args []Val, i int) (*Val, error) {
	if args[i].Type != TypeFrame || args[i].Frame == nil {
		return nil, fmt.Errorf("vql: argument %d must be a frame, got %v", i, args[i].Type)
	}
	return &args[i], nil
}

func init() {
	// zoom(Frame, factor) — crop the center 1/factor and scale back up.
	Register(&Transform{
		Name: "zoom", Params: []Type{TypeFrame, TypeNum}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			factor := args[1].Float()
			if factor < 1 {
				return Val{}, fmt.Errorf("vql: zoom factor %v must be >= 1", factor)
			}
			return FrameVal(raster.Zoom(f.Frame, factor)), nil
		},
		DDE: func(args []Expr, vals []Val) (Expr, bool) {
			// zoom by 1 is the identity.
			if vals[1].Type == TypeNum && vals[1].Num.Equal(ratOne) {
				return args[0], true
			}
			return nil, false
		},
	})

	// blur(Frame, sigma) — Gaussian blur (Q4/Q9's pixel-wise filter).
	Register(&Transform{
		Name: "blur", Params: []Type{TypeFrame, TypeNum}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(raster.GaussianBlur(f.Frame, args[1].Float())), nil
		},
		DDE: func(args []Expr, vals []Val) (Expr, bool) {
			if vals[1].Type == TypeNum && vals[1].Num.Sign() <= 0 {
				return args[0], true
			}
			return nil, false
		},
	})

	Register(&Transform{
		Name: "sharpen", Params: []Type{TypeFrame}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(raster.Sharpen(f.Frame)), nil
		},
	})

	Register(&Transform{
		Name: "edges", Params: []Type{TypeFrame}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(raster.EdgeDetect(f.Frame)), nil
		},
	})

	Register(&Transform{
		Name: "denoise", Params: []Type{TypeFrame}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(raster.Denoise(f.Frame)), nil
		},
	})

	// grade(Frame, brightness, contrast, saturation)
	Register(&Transform{
		Name: "grade", Params: []Type{TypeFrame, TypeNum, TypeNum, TypeNum}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(raster.Grade(f.Frame, args[1].Int(), args[2].Float(), args[3].Float())), nil
		},
		DDE: func(args []Expr, vals []Val) (Expr, bool) {
			if vals[1].Type == TypeNum && vals[1].Num.Sign() == 0 &&
				vals[2].Type == TypeNum && vals[2].Num.Equal(ratOne) &&
				vals[3].Type == TypeNum && vals[3].Num.Equal(ratOne) {
				return args[0], true
			}
			return nil, false
		},
	})

	// grid(a, b, c, d) — 2x2 composition (Q3/Q8).
	Register(&Transform{
		Name: "grid", Params: []Type{TypeFrame, TypeFrame, TypeFrame, TypeFrame}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			frames := make([]*Val, 4)
			for i := range frames {
				f, err := argFrame(args, i)
				if err != nil {
					return Val{}, err
				}
				frames[i] = f
			}
			return FrameVal(raster.Grid2x2(frames[0].Frame, frames[1].Frame, frames[2].Frame, frames[3].Frame)), nil
		},
	})

	// gridn(frames...) — near-square grid of any number of streams.
	Register(&Transform{
		Name: "gridn", Params: []Type{TypeFrame}, Variadic: true, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			frames := make([]*frame.Frame, len(args))
			for i := range args {
				f, err := argFrame(args, i)
				if err != nil {
					return Val{}, err
				}
				frames[i] = f.Frame
			}
			return FrameVal(raster.GridN(frames)), nil
		},
	})

	// hstack(a, b) — side-by-side composition.
	Register(&Transform{
		Name: "hstack", Params: []Type{TypeFrame, TypeFrame}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			a, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			b, err := argFrame(args, 1)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(raster.HStack(a.Frame, b.Frame)), nil
		},
	})

	// vstack(a, b) — stacked composition.
	Register(&Transform{
		Name: "vstack", Params: []Type{TypeFrame, TypeFrame}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			a, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			b, err := argFrame(args, 1)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(raster.VStack(a.Frame, b.Frame)), nil
		},
	})

	// pip(base, inset, x, y, scalediv) — picture-in-picture.
	Register(&Transform{
		Name: "pip", Params: []Type{TypeFrame, TypeFrame, TypeNum, TypeNum, TypeNum}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			base, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			inset, err := argFrame(args, 1)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(raster.PiP(base.Frame, inset.Frame, args[2].Int(), args[3].Int(), args[4].Int())), nil
		},
	})

	// overlay(base, image, x, y, alpha)
	Register(&Transform{
		Name: "overlay", Params: []Type{TypeFrame, TypeFrame, TypeNum, TypeNum, TypeNum}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			base, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			img, err := argFrame(args, 1)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(raster.Overlay(base.Frame, img.Frame, args[2].Int(), args[3].Int(), args[4].Int())), nil
		},
		DDE: func(args []Expr, vals []Val) (Expr, bool) {
			// Fully transparent overlays are the identity.
			if vals[4].Type == TypeNum && vals[4].Num.Sign() <= 0 {
				return args[0], true
			}
			return nil, false
		},
	})

	// boxes(Frame, Boxes) — the paper's BoundingBox operator (Q5/Q10).
	Register(&Transform{
		Name: "boxes", Params: []Type{TypeFrame, TypeBoxes}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			var bs []raster.Box
			switch args[1].Type {
			case TypeBoxes:
				bs = args[1].Boxes
			case TypeNull:
				// Missing samples mean "no detections".
			default:
				return Val{}, fmt.Errorf("vql: boxes wants a box list, got %v", args[1].Type)
			}
			return FrameVal(raster.BoundingBoxes(f.Frame, bs)), nil
		},
		DDE: func(args []Expr, vals []Val) (Expr, bool) {
			// BoundingBox_dde: identity when the frame has no objects.
			if vals[1].Type == TypeNull || (vals[1].Type == TypeBoxes && len(vals[1].Boxes) == 0) {
				return args[0], true
			}
			return nil, false
		},
	})

	// label(Frame, text, x, y) — burn text onto a frame.
	Register(&Transform{
		Name: "label", Params: []Type{TypeFrame, TypeStr, TypeNum, TypeNum}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			var text string
			switch args[1].Type {
			case TypeStr:
				text = args[1].Str
			case TypeNull:
			default:
				text = args[1].String()
			}
			out := f.Frame.Clone()
			scale := out.H / 240
			if scale < 1 {
				scale = 1
			}
			raster.Label(out, args[2].Int(), args[3].Int(), text, scale, raster.Black, raster.Yellow)
			return FrameVal(out), nil
		},
		DDE: func(args []Expr, vals []Val) (Expr, bool) {
			if vals[1].Type == TypeNull || (vals[1].Type == TypeStr && vals[1].Str == "") {
				return args[0], true
			}
			return nil, false
		},
	})

	// ifthenelse(cond, a, b) — the paper's data-rewrite running example.
	Register(&Transform{
		Name: "ifthenelse", Params: []Type{TypeBool, TypeFrame, TypeFrame}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			cond := args[0].Truthy()
			branch := 2
			if cond {
				branch = 1
			}
			f, err := argFrame(args, branch)
			if err != nil {
				return Val{}, err
			}
			return FrameVal(f.Frame), nil
		},
		DDE: func(args []Expr, vals []Val) (Expr, bool) {
			// IfThenElse_dde: select the branch once the condition is known.
			if vals[0].Type != TypeFrame && vals[0].Type != TypeInvalid {
				if vals[0].Truthy() {
					return args[1], true
				}
				return args[2], true
			}
			return nil, false
		},
	})

	// crossfade(a, b, mix)
	Register(&Transform{
		Name: "crossfade", Params: []Type{TypeFrame, TypeFrame, TypeNum}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			a, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			b, err := argFrame(args, 1)
			if err != nil {
				return Val{}, err
			}
			if !a.Frame.SameShape(b.Frame) {
				return Val{}, fmt.Errorf("vql: crossfade frames must share a shape (%dx%d vs %dx%d)",
					a.Frame.W, a.Frame.H, b.Frame.W, b.Frame.H)
			}
			return FrameVal(raster.Crossfade(a.Frame, b.Frame, args[2].Float())), nil
		},
		DDE: func(args []Expr, vals []Val) (Expr, bool) {
			if vals[2].Type == TypeNum {
				if vals[2].Num.Sign() <= 0 {
					return args[0], true
				}
				if !vals[2].Num.Less(ratOne) {
					return args[1], true
				}
			}
			return nil, false
		},
	})

	// wipe(a, b, position)
	Register(&Transform{
		Name: "wipe", Params: []Type{TypeFrame, TypeFrame, TypeNum}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			a, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			b, err := argFrame(args, 1)
			if err != nil {
				return Val{}, err
			}
			if !a.Frame.SameShape(b.Frame) {
				return Val{}, fmt.Errorf("vql: wipe frames must share a shape (%dx%d vs %dx%d)",
					a.Frame.W, a.Frame.H, b.Frame.W, b.Frame.H)
			}
			return FrameVal(raster.WipeLR(a.Frame, b.Frame, args[2].Float())), nil
		},
	})

	// scale(Frame, w, h)
	Register(&Transform{
		Name: "scale", Params: []Type{TypeFrame, TypeNum, TypeNum}, Result: TypeFrame,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			w, h := args[1].Int(), args[2].Int()
			if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
				return Val{}, fmt.Errorf("vql: scale target %dx%d must be positive and even", w, h)
			}
			return FrameVal(raster.Scale(f.Frame, w, h)), nil
		},
	})

	// crop(Frame, x, y, w, h)
	Register(&Transform{
		Name: "crop", Params: []Type{TypeFrame, TypeNum, TypeNum, TypeNum, TypeNum}, Result: TypeFrame,
		Eval: func(args []Val) (Val, error) {
			f, err := argFrame(args, 0)
			if err != nil {
				return Val{}, err
			}
			x, y, w, h := args[1].Int(), args[2].Int(), args[3].Int(), args[4].Int()
			if x%2 != 0 || y%2 != 0 || w%2 != 0 || h%2 != 0 {
				return Val{}, fmt.Errorf("vql: crop rect %d,%d %dx%d must be even-aligned", x, y, w, h)
			}
			if x < 0 || y < 0 || w <= 0 || h <= 0 || x+w > f.Frame.W || y+h > f.Frame.H {
				return Val{}, fmt.Errorf("vql: crop rect %d,%d %dx%d outside %dx%d frame", x, y, w, h, f.Frame.W, f.Frame.H)
			}
			return FrameVal(raster.Crop(f.Frame, x, y, w, h)), nil
		},
	})

	// count(Boxes) — number of objects; usable in conditions.
	Register(&Transform{
		Name: "count", Params: []Type{TypeBoxes}, Result: TypeNum,
		Eval: func(args []Val) (Val, error) {
			switch args[0].Type {
			case TypeBoxes:
				return NumV(intRat(len(args[0].Boxes))), nil
			case TypeNull:
				return NumV(ratZero), nil
			default:
				return Val{}, fmt.Errorf("vql: count wants boxes, got %v", args[0].Type)
			}
		},
	})
}
