package vql

import (
	"fmt"
	"sort"
	"strings"

	"v2v/internal/rational"
)

// Expr is a node of the render expression AST. Expressions are immutable
// after construction; rewrites build new trees.
type Expr interface {
	// String renders the expression in DSL syntax.
	String() string
	// EqualExpr reports structural equality (used by the rewriter to
	// group times whose rewritten expressions coincide).
	EqualExpr(Expr) bool
}

// TimeVar is the render function's time parameter t.
type TimeVar struct{}

func (TimeVar) String() string { return "t" }

func (TimeVar) EqualExpr(o Expr) bool {
	_, ok := o.(TimeVar)
	return ok
}

// NumLit is an exact rational literal.
type NumLit struct{ V rational.Rat }

// String renders the literal. Non-integer rationals are parenthesized so
// that "x * (-209/21)" round-trips as a literal instead of reassociating
// to "(x * -209) / 21" under the parser's left-associative division.
func (e NumLit) String() string {
	if e.V.Den() == 1 {
		return e.V.String()
	}
	return "(" + e.V.String() + ")"
}

func (e NumLit) EqualExpr(o Expr) bool {
	n, ok := o.(NumLit)
	return ok && n.V.Equal(e.V)
}

// StrLit is a string literal.
type StrLit struct{ V string }

func (e StrLit) String() string { return quoteVQL(e.V) }

func (e StrLit) EqualExpr(o Expr) bool {
	s, ok := o.(StrLit)
	return ok && s.V == e.V
}

// BoolLit is a boolean literal.
type BoolLit struct{ V bool }

func (e BoolLit) String() string { return fmt.Sprintf("%t", e.V) }

func (e BoolLit) EqualExpr(o Expr) bool {
	b, ok := o.(BoolLit)
	return ok && b.V == e.V
}

// NullLit is the null literal.
type NullLit struct{}

func (NullLit) String() string { return "null" }

func (NullLit) EqualExpr(o Expr) bool {
	_, ok := o.(NullLit)
	return ok
}

// BinOpKind enumerates binary operators.
type BinOpKind uint8

const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
)

var binOpNames = map[BinOpKind]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=",
	OpEQ: "==", OpNE: "!=", OpAnd: "and", OpOr: "or",
}

// BinOp is a binary operation over numbers or booleans.
type BinOp struct {
	Op   BinOpKind
	L, R Expr
}

func (e BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, binOpNames[e.Op], e.R)
}

func (e BinOp) EqualExpr(o Expr) bool {
	b, ok := o.(BinOp)
	return ok && b.Op == e.Op && e.L.EqualExpr(b.L) && e.R.EqualExpr(b.R)
}

// Not is boolean negation.
type Not struct{ E Expr }

func (e Not) String() string { return fmt.Sprintf("not %s", e.E) }

func (e Not) EqualExpr(o Expr) bool {
	n, ok := o.(Not)
	return ok && e.E.EqualExpr(n.E)
}

// Neg is numeric negation.
type Neg struct{ E Expr }

func (e Neg) String() string { return fmt.Sprintf("-%s", e.E) }

func (e Neg) EqualExpr(o Expr) bool {
	n, ok := o.(Neg)
	return ok && e.E.EqualExpr(n.E)
}

// VideoRef indexes a source video by time: name[Index].
type VideoRef struct {
	Name  string
	Index Expr
}

func (e VideoRef) String() string { return fmt.Sprintf("%s[%s]", e.Name, e.Index) }

func (e VideoRef) EqualExpr(o Expr) bool {
	v, ok := o.(VideoRef)
	return ok && v.Name == e.Name && e.Index.EqualExpr(v.Index)
}

// DataRef indexes a data array by time: name[Index]. The parser cannot
// distinguish video and data references syntactically; resolution happens
// against the spec's declarations (see Spec.ResolveRefs).
type DataRef struct {
	Name  string
	Index Expr
}

func (e DataRef) String() string { return fmt.Sprintf("%s[%s]", e.Name, e.Index) }

func (e DataRef) EqualExpr(o Expr) bool {
	d, ok := o.(DataRef)
	return ok && d.Name == e.Name && e.Index.EqualExpr(d.Index)
}

// Call applies a registered transform (or UDF) to arguments.
type Call struct {
	Name string
	Args []Expr
}

func (e Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ", "))
}

func (e Call) EqualExpr(o Expr) bool {
	c, ok := o.(Call)
	if !ok || c.Name != e.Name || len(c.Args) != len(e.Args) {
		return false
	}
	for i := range e.Args {
		if !e.Args[i].EqualExpr(c.Args[i]) {
			return false
		}
	}
	return true
}

// Guard is a match-arm time pattern: either an evenly spaced range or an
// explicit set of times.
type Guard struct {
	// IsRange selects between Range and Set.
	IsRange bool
	Range   rational.Range
	Set     []rational.Rat // sorted ascending
}

// RangeGuard builds a range pattern.
func RangeGuard(r rational.Range) Guard { return Guard{IsRange: true, Range: r} }

// SetGuard builds an explicit-times pattern (the input is copied and
// sorted).
func SetGuard(times []rational.Rat) Guard {
	ts := make([]rational.Rat, len(times))
	copy(ts, times)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	return Guard{Set: ts}
}

// Contains reports whether the guard matches time t.
func (g Guard) Contains(t rational.Rat) bool {
	if g.IsRange {
		return g.Range.Contains(t)
	}
	i := sort.Search(len(g.Set), func(i int) bool { return !g.Set[i].Less(t) })
	return i < len(g.Set) && g.Set[i].Equal(t)
}

// Count returns the number of times the guard matches.
func (g Guard) Count() int {
	if g.IsRange {
		return g.Range.Count()
	}
	return len(g.Set)
}

// Interval returns the half-open interval spanned by the guard's times.
func (g Guard) Interval() rational.Interval {
	if g.IsRange {
		return g.Range.Interval()
	}
	if len(g.Set) == 0 {
		return rational.Interval{}
	}
	return rational.Interval{Lo: g.Set[0], Hi: g.Set[len(g.Set)-1]}
}

func (g Guard) String() string {
	if g.IsRange {
		return fmt.Sprintf("range(%s, %s, %s)", g.Range.Start, g.Range.End, g.Range.Step)
	}
	parts := make([]string, len(g.Set))
	for i, t := range g.Set {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// EqualGuard reports whether two guards match exactly the same times.
func (g Guard) EqualGuard(o Guard) bool {
	if g.IsRange && o.IsRange {
		return g.Range.Start.Equal(o.Range.Start) && g.Range.End.Equal(o.Range.End) && g.Range.Step.Equal(o.Range.Step)
	}
	if g.Count() != o.Count() {
		return false
	}
	for i, n := 0, g.Count(); i < n; i++ {
		var a, b rational.Rat
		if g.IsRange {
			a = g.Range.At(i)
		} else {
			a = g.Set[i]
		}
		if o.IsRange {
			b = o.Range.At(i)
		} else {
			b = o.Set[i]
		}
		if !a.Equal(b) {
			return false
		}
	}
	return true
}

// MatchArm is one arm of a match expression: times matching Guard render
// Body.
type MatchArm struct {
	Guard Guard
	Body  Expr
}

// Match dispatches on the time variable: the first arm whose guard
// contains t renders. The paper's Render functions are matches at the top
// level; V2V's rewriter also produces them.
type Match struct {
	Arms []MatchArm
}

func (e Match) String() string {
	var sb strings.Builder
	sb.WriteString("match t {\n")
	for _, a := range e.Arms {
		fmt.Fprintf(&sb, "  t in %s => %s,\n", a.Guard, a.Body)
	}
	sb.WriteString("}")
	return sb.String()
}

func (e Match) EqualExpr(o Expr) bool {
	m, ok := o.(Match)
	if !ok || len(m.Arms) != len(e.Arms) {
		return false
	}
	for i := range e.Arms {
		if !e.Arms[i].Guard.EqualGuard(m.Arms[i].Guard) || !e.Arms[i].Body.EqualExpr(m.Arms[i].Body) {
			return false
		}
	}
	return true
}

// ArmFor returns the body of the first arm matching t, or nil.
func (e Match) ArmFor(t rational.Rat) Expr {
	for _, a := range e.Arms {
		if a.Guard.Contains(t) {
			return a.Body
		}
	}
	return nil
}

// OutputFormat optionally overrides the output stream format. When nil the
// output adopts the source format (format passthrough), which is what
// permits stream copies; an explicit format forces rendering.
type OutputFormat struct {
	Width   int          `json:"width"`
	Height  int          `json:"height"`
	FPS     rational.Rat `json:"fps"`
	Quality int          `json:"quality,omitempty"`
	GOP     int          `json:"gop,omitempty"`
	Level   int          `json:"level,omitempty"`
}

// Spec is a complete V2V synthesis specification.
type Spec struct {
	TimeDomain rational.Range
	Render     Expr
	Videos     map[string]string // logical name -> VMF path
	DataFiles  map[string]string // logical name -> annotation JSON path
	DataSQL    map[string]string // logical name -> SQL text (materialized via sqlmini)
	Output     *OutputFormat
}

// Clone returns a shallow copy with fresh maps (expressions are immutable
// and shared).
func (s *Spec) Clone() *Spec {
	out := &Spec{TimeDomain: s.TimeDomain, Render: s.Render, Output: s.Output}
	out.Videos = make(map[string]string, len(s.Videos))
	for k, v := range s.Videos {
		out.Videos[k] = v
	}
	out.DataFiles = make(map[string]string, len(s.DataFiles))
	for k, v := range s.DataFiles {
		out.DataFiles[k] = v
	}
	out.DataSQL = make(map[string]string, len(s.DataSQL))
	for k, v := range s.DataSQL {
		out.DataSQL[k] = v
	}
	return out
}

// IsDataName reports whether name is declared as a data array.
func (s *Spec) IsDataName(name string) bool {
	if _, ok := s.DataFiles[name]; ok {
		return true
	}
	_, ok := s.DataSQL[name]
	return ok
}

// ResolveRefs rewrites the Render tree so indexing of declared data arrays
// uses DataRef and everything else uses VideoRef. The parser emits
// VideoRef for all indexing; this pass fixes the split using the spec's
// declarations. It returns an error for names that are declared neither
// as videos nor as data.
func (s *Spec) ResolveRefs() error {
	var resolve func(e Expr) (Expr, error)
	resolve = func(e Expr) (Expr, error) {
		switch n := e.(type) {
		case VideoRef:
			idx, err := resolve(n.Index)
			if err != nil {
				return nil, err
			}
			if s.IsDataName(n.Name) {
				return DataRef{Name: n.Name, Index: idx}, nil
			}
			if _, ok := s.Videos[n.Name]; !ok {
				return nil, fmt.Errorf("vql: %q is not a declared video or data array", n.Name)
			}
			return VideoRef{Name: n.Name, Index: idx}, nil
		case DataRef:
			idx, err := resolve(n.Index)
			if err != nil {
				return nil, err
			}
			if !s.IsDataName(n.Name) {
				return nil, fmt.Errorf("vql: %q is not a declared data array", n.Name)
			}
			return DataRef{Name: n.Name, Index: idx}, nil
		case BinOp:
			l, err := resolve(n.L)
			if err != nil {
				return nil, err
			}
			r, err := resolve(n.R)
			if err != nil {
				return nil, err
			}
			return BinOp{Op: n.Op, L: l, R: r}, nil
		case Not:
			inner, err := resolve(n.E)
			if err != nil {
				return nil, err
			}
			return Not{E: inner}, nil
		case Neg:
			inner, err := resolve(n.E)
			if err != nil {
				return nil, err
			}
			return Neg{E: inner}, nil
		case Call:
			args := make([]Expr, len(n.Args))
			for i, a := range n.Args {
				ra, err := resolve(a)
				if err != nil {
					return nil, err
				}
				args[i] = ra
			}
			return Call{Name: n.Name, Args: args}, nil
		case Match:
			arms := make([]MatchArm, len(n.Arms))
			for i, a := range n.Arms {
				body, err := resolve(a.Body)
				if err != nil {
					return nil, err
				}
				arms[i] = MatchArm{Guard: a.Guard, Body: body}
			}
			return Match{Arms: arms}, nil
		default:
			return e, nil
		}
	}
	r, err := resolve(s.Render)
	if err != nil {
		return err
	}
	s.Render = r
	return nil
}

// Walk visits every node of the expression tree in preorder.
func Walk(e Expr, visit func(Expr)) {
	visit(e)
	switch n := e.(type) {
	case BinOp:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case Not:
		Walk(n.E, visit)
	case Neg:
		Walk(n.E, visit)
	case VideoRef:
		Walk(n.Index, visit)
	case DataRef:
		Walk(n.Index, visit)
	case Call:
		for _, a := range n.Args {
			Walk(a, visit)
		}
	case Match:
		for _, a := range n.Arms {
			Walk(a.Body, visit)
		}
	}
}

// UsesTime reports whether the expression references the time variable.
func UsesTime(e Expr) bool {
	found := false
	Walk(e, func(n Expr) {
		if _, ok := n.(TimeVar); ok {
			found = true
		}
	})
	return found
}

// RenderFor returns the effective render expression at time t: the match
// arm body if Render is a match, else Render itself.
func (s *Spec) RenderFor(t rational.Rat) Expr {
	if m, ok := s.Render.(Match); ok {
		return m.ArmFor(t)
	}
	return s.Render
}
