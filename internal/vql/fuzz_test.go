package vql

import (
	"strings"
	"testing"
)

// FuzzParse drives the spec parser with arbitrary input. Two
// properties are enforced: the parser never panics or overruns the
// stack (maxParseDepth guards the recursive descent), and anything it
// accepts survives a Format -> Parse -> Format round trip unchanged —
// the same invariant roundtrip_test.go checks for generated ASTs,
// extended here to adversarial concrete syntax.
func FuzzParse(f *testing.F) {
	f.Add(`timedomain range(0, 6, 1/24);
videos { cam: "footage.vmf"; }
data { bb: "footage.boxes.json"; }
render(t) = match t {
    t in range(0, 2, 1/24) => cam[t + 1],
    t in range(2, 4, 1/24) => boxes(cam[t + 1], bb[t + 1]),
    t in range(4, 6, 1/24) => grade(zoom(cam[t + 1], 2), 10, 1.1, 1.2),
};`)
	f.Add(`timedomain range(0, 1, 1/30);
videos { v: "a.vmf"; }
render(t) = v[t];`)
	f.Add(`timedomain range(0, 1, 1/30);
videos { v: "a.vmf"; }
output { width: 64; height: 48; fps: 30; }
render(t) = if t < 1/2 then v[t] else zoom(v[t], 2);`)
	f.Add(`timedomain {0, 1/30, 2/30};
videos { v: "a.vmf"; }
render(t) = match t { t in {0} => v[t], t in {1/30, 2/30} => blur(v[t], 2), };`)
	f.Add("render(t) = v[t];")
	f.Add("timedomain range(0, 1, 1/30); videos { v: \"" + `\"quote\"` + ".vmf\"; } render(t) = v[t];")
	f.Add(strings.Repeat("(", 500))
	f.Add("not " + strings.Repeat("not ", 300) + "1")

	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out := Format(spec)
		spec2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of formatted spec failed: %v\nformatted:\n%s", err, out)
		}
		if again := Format(spec2); again != out {
			t.Fatalf("format not idempotent:\nfirst:\n%s\nsecond:\n%s", out, again)
		}
	})
}
