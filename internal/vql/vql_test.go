package vql

import (
	"strings"
	"testing"

	"v2v/internal/data"
	"v2v/internal/frame"
	"v2v/internal/raster"
	"v2v/internal/rational"
)

func rat(n, d int64) rational.Rat { return rational.New(n, d) }

// fakeFrames serves flat frames whose luma encodes which (video, time) was
// requested, so evaluation results are checkable.
type fakeFrames struct{ w, h int }

func (f fakeFrames) SourceFrame(video string, t rational.Rat) (*frame.Frame, error) {
	fr := frame.New(f.w, f.h, frame.FormatYUV420)
	lum := byte(len(video)*10) + byte(t.Mul(rational.FromInt(4)).Floor())
	fr.Fill(lum, 128, 128)
	return fr, nil
}

// fakeData serves values from a map.
type fakeData map[string]map[string]data.Value

func (d fakeData) DataAt(name string, t rational.Rat) (data.Value, bool, error) {
	arr, ok := d[name]
	if !ok {
		return data.Value{}, false, errUnknownArray(name)
	}
	v, ok := arr[t.String()]
	return v, ok, nil
}

type errUnknownArray string

func (e errUnknownArray) Error() string { return "unknown array " + string(e) }

func env(t rational.Rat) *Env {
	return &Env{T: t, Frames: fakeFrames{w: 32, h: 32}, Data: fakeData{
		"a": {
			"0": data.NumVal(3),
			"1": data.NumVal(6),
			"2": data.NumVal(8),
		},
		"bb": {
			"0": data.BoxesVal(nil),
			"1": data.BoxesVal([]raster.Box{{X: 2, Y: 2, W: 8, H: 8, Class: "Z"}}),
		},
	}}
}

func mustParseExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func evalNum(t *testing.T, src string, at rational.Rat) rational.Rat {
	t.Helper()
	v, err := Eval(mustParseExpr(t, src), env(at))
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	if v.Type != TypeNum {
		t.Fatalf("Eval(%q) type = %v", src, v.Type)
	}
	return v.Num
}

func evalBool(t *testing.T, src string, at rational.Rat) bool {
	t.Helper()
	v, err := Eval(mustParseExpr(t, src), env(at))
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	if v.Type != TypeBool {
		t.Fatalf("Eval(%q) type = %v", src, v.Type)
	}
	return v.Bool
}

func TestArithmeticFolding(t *testing.T) {
	// Integer division folds to an exact rational at parse time.
	e := mustParseExpr(t, "13463/30")
	n, ok := e.(NumLit)
	if !ok || !n.V.Equal(rat(13463, 30)) {
		t.Fatalf("13463/30 parsed as %v", e)
	}
	if got := evalNum(t, "t + 13463/30", rat(1, 30)); !got.Equal(rat(13464, 30)) {
		t.Errorf("t + 13463/30 = %v", got)
	}
	if got := evalNum(t, "2 * 3 + 4/2 - 1", rational.Zero); !got.Equal(rational.FromInt(7)) {
		t.Errorf("fold = %v", got)
	}
	if got := evalNum(t, "-(t + 1)", rational.One); !got.Equal(rational.FromInt(-2)) {
		t.Errorf("neg = %v", got)
	}
	if got := evalNum(t, "-5/10", rational.Zero); !got.Equal(rat(-1, 2)) {
		t.Errorf("-5/10 = %v", got)
	}
	if got := evalNum(t, "29.97", rational.Zero); !got.Equal(rat(2997, 100)) {
		t.Errorf("decimal = %v", got)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := map[string]bool{
		"1 < 2":            true,
		"2 <= 2":           true,
		"3 > 4":            false,
		"3 >= 3":           true,
		"1/2 == 2/4":       true,
		"1 != 1":           false,
		"true and false":   false,
		"true or false":    true,
		"not false":        true,
		"1 < 2 and 2 < 3":  true,
		`"a" == "a"`:       true,
		`"a" != "b"`:       true,
		"null == null":     true,
		"t == 0 or t == 1": true, // at t=0
		"not (1 > 2)":      true,
	}
	for src, want := range cases {
		if got := evalBool(t, src, rational.Zero); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"1/0 + t",      // division by zero survives folding
		`"a" + 1`,      // bad arithmetic types
		`"a" < "b"`,    // ordering non-numbers
		"-true",        // negate bool
		"zoom(t, 2)",   // transform wants a frame
		"unknowntr(t)", // unknown transform
		"zoom(vid[t])", // arity
		"vid[true]",    // non-numeric index
	}
	for _, src := range bad {
		if _, err := Eval(mustParseExpr(t, src), env(rational.Zero)); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestDataRefEval(t *testing.T) {
	e := DataRef{Name: "a", Index: TimeVar{}}
	v, err := Eval(e, env(rational.One))
	if err != nil || !v.Num.Equal(rational.FromInt(6)) {
		t.Fatalf("a[1] = %v, %v", v, err)
	}
	// Missing sample -> null.
	v, err = Eval(DataRef{Name: "a", Index: NumLit{rat(9, 1)}}, env(rational.Zero))
	if err != nil || v.Type != TypeNull {
		t.Fatalf("a[9] = %v, %v", v, err)
	}
	// Unknown array -> error.
	if _, err := Eval(DataRef{Name: "nope", Index: TimeVar{}}, env(rational.Zero)); err == nil {
		t.Error("unknown array should error")
	}
}

func TestIfThenElseSugarAndPaperExample(t *testing.T) {
	// The paper's example: IfThenElse(a[t] < 5, vid1[t], vid2[t]) over
	// a = [3, 6, 8]: t=0 -> vid1, t=1,2 -> vid2.
	src := "if a[t] < 5 then vid1[t] else vid2[t]"
	e := mustParseExpr(t, src)
	c, ok := e.(Call)
	if !ok || c.Name != "ifthenelse" {
		t.Fatalf("sugar parsed as %v", e)
	}
	// Resolve a as data, vids as videos via a spec.
	spec := &Spec{
		TimeDomain: rational.NewRange(rational.Zero, rational.FromInt(3), rational.One),
		Render:     e,
		Videos:     map[string]string{"vid1": "x", "vid2": "y"},
		DataFiles:  map[string]string{"a": "z"},
		DataSQL:    map[string]string{},
	}
	if err := spec.ResolveRefs(); err != nil {
		t.Fatal(err)
	}
	for i, wantVid := range []string{"vid1", "vid2", "vid2"} {
		at := rational.FromInt(int64(i))
		v, err := Eval(spec.Render, env(at))
		if err != nil {
			t.Fatalf("t=%d: %v", i, err)
		}
		// fakeFrames encodes len(video)*10 + 4t in luma: vid1/vid2 both len 4.
		_ = wantVid
		if v.Type != TypeFrame {
			t.Fatalf("t=%d type = %v", i, v.Type)
		}
	}
	// Check branch selection via the DDE function directly.
	tr, _ := Lookup("ifthenelse")
	got, ok := tr.DDE(c.Args, []Val{BoolV(true), {Type: TypeFrame}, {Type: TypeFrame}})
	if !ok || !got.EqualExpr(c.Args[1]) {
		t.Errorf("ifthenelse dde true = %v, %v", got, ok)
	}
	got, ok = tr.DDE(c.Args, []Val{BoolV(false), {Type: TypeFrame}, {Type: TypeFrame}})
	if !ok || !got.EqualExpr(c.Args[2]) {
		t.Errorf("ifthenelse dde false = %v", got)
	}
	if _, ok := tr.DDE(c.Args, []Val{{Type: TypeFrame}, {Type: TypeFrame}, {Type: TypeFrame}}); ok {
		t.Error("symbolic condition should not rewrite")
	}
}

func TestBoxesDDE(t *testing.T) {
	tr, ok := Lookup("boxes")
	if !ok {
		t.Fatal("boxes not registered")
	}
	args := []Expr{VideoRef{Name: "v", Index: TimeVar{}}, DataRef{Name: "bb", Index: TimeVar{}}}
	// Empty boxes -> identity.
	got, ok := tr.DDE(args, []Val{{Type: TypeFrame}, BoxesV(nil)})
	if !ok || !got.EqualExpr(args[0]) {
		t.Errorf("empty boxes dde = %v, %v", got, ok)
	}
	// Null sample -> identity.
	got, ok = tr.DDE(args, []Val{{Type: TypeFrame}, NullV()})
	if !ok || !got.EqualExpr(args[0]) {
		t.Errorf("null boxes dde = %v", got)
	}
	// Non-empty -> keep.
	if _, ok := tr.DDE(args, []Val{{Type: TypeFrame}, BoxesV([]raster.Box{{W: 1, H: 1}})}); ok {
		t.Error("non-empty boxes should not rewrite")
	}
}

// resolveBB rewrites references to "bb" into DataRefs, mimicking what
// Spec.ResolveRefs does for declared data arrays.
func resolveBB(e Expr) Expr {
	switch n := e.(type) {
	case VideoRef:
		if n.Name == "bb" {
			return DataRef{Name: "bb", Index: resolveBB(n.Index)}
		}
		return VideoRef{Name: n.Name, Index: resolveBB(n.Index)}
	case Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = resolveBB(a)
		}
		return Call{Name: n.Name, Args: args}
	case BinOp:
		return BinOp{Op: n.Op, L: resolveBB(n.L), R: resolveBB(n.R)}
	default:
		return e
	}
}

func TestTransformEvalSmoke(t *testing.T) {
	// Every frame transform evaluates without error on a real frame.
	cases := []string{
		"zoom(vid[t], 2)",
		"blur(vid[t], 1.0)",
		"sharpen(vid[t])",
		"edges(vid[t])",
		"denoise(vid[t])",
		"grade(vid[t], 10, 1.2, 0.8)",
		"grid(a[t], b[t], c[t], d[t])",
		"overlay(vid[t], logo[t], 2, 2, 128)",
		"boxes(vid[t], bb[t])",
		`label(vid[t], "HI", 2, 2)`,
		"crossfade(a[t], b[t], 0.5)",
		"wipe(a[t], b[t], 0.5)",
		"scale(vid[t], 16, 16)",
		"crop(vid[t], 0, 0, 16, 16)",
	}
	e := env(rational.One)
	for _, src := range cases {
		v, err := Eval(resolveBB(mustParseExpr(t, src)), e)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if v.Type != TypeFrame || v.Frame == nil {
			t.Errorf("%q: result %v", src, v)
		}
	}
	// count returns a number.
	v, err := Eval(resolveBB(mustParseExpr(t, "count(bb[1])")), e)
	if err != nil || !v.Num.Equal(rational.One) {
		t.Errorf("count(bb[1]) = %v, %v", v, err)
	}
	cv, err := Eval(resolveBB(mustParseExpr(t, "count(bb[0]) == 0")), env(rational.Zero))
	if err != nil || !cv.Bool {
		t.Errorf("count of empty should be 0: %v %v", cv, err)
	}
}

func TestMatchEval(t *testing.T) {
	src := `match t {
		t in range(0, 2, 1) => vid1[t],
		t in {2, 3} => zoom(vid1[t], 2),
	}`
	e := mustParseExpr(t, src)
	m, ok := e.(Match)
	if !ok || len(m.Arms) != 2 {
		t.Fatalf("parsed %v", e)
	}
	for i := 0; i < 4; i++ {
		v, err := Eval(e, env(rational.FromInt(int64(i))))
		if err != nil || v.Type != TypeFrame {
			t.Fatalf("t=%d: %v %v", i, v, err)
		}
	}
	if _, err := Eval(e, env(rational.FromInt(9))); err == nil {
		t.Error("uncovered time should error")
	}
	if body := m.ArmFor(rational.FromInt(3)); body == nil {
		t.Error("ArmFor(3) should match second arm")
	}
	if body := m.ArmFor(rational.FromInt(9)); body != nil {
		t.Error("ArmFor(9) should be nil")
	}
}

func TestGuardSemantics(t *testing.T) {
	g := RangeGuard(rational.NewRange(rational.Zero, rational.One, rat(1, 4)))
	if !g.Contains(rat(3, 4)) || g.Contains(rational.One) || g.Contains(rat(1, 3)) {
		t.Error("range guard wrong")
	}
	if g.Count() != 4 {
		t.Errorf("count = %d", g.Count())
	}
	s := SetGuard([]rational.Rat{rational.FromInt(5), rational.Zero})
	if !s.Contains(rational.Zero) || !s.Contains(rational.FromInt(5)) || s.Contains(rational.One) {
		t.Error("set guard wrong")
	}
	if s.Count() != 2 {
		t.Errorf("set count = %d", s.Count())
	}
	if !s.Interval().Contains(rational.FromInt(3)) {
		t.Error("set interval should span")
	}
	if !g.EqualGuard(RangeGuard(rational.NewRange(rational.Zero, rational.One, rat(1, 4)))) {
		t.Error("equal range guards")
	}
	// Range and set guards with identical times are equal.
	s2 := SetGuard([]rational.Rat{rational.Zero, rat(1, 4), rat(1, 2), rat(3, 4)})
	if !g.EqualGuard(s2) || !s2.EqualGuard(g) {
		t.Error("range/set guard equality")
	}
	if g.EqualGuard(SetGuard([]rational.Rat{rational.Zero})) {
		t.Error("different counts should differ")
	}
}

func TestParseSpecFull(t *testing.T) {
	src := `
	// A paper-style spec.
	timedomain range(0, 600, 1/30);
	videos {
		vid1: "video1.vmf";
		vid2: "video2.vmf";
	}
	data { vid1_bb: "annot1.json"; }
	sql { counts: "SELECT ts, n FROM det"; }
	output { width: 128; height: 72; fps: 30; }
	render(t) = match t {
		t in range(0, 300, 1/30) => vid1[t],
		t in range(300, 600, 1/30) => boxes(vid2[t - 300], vid1_bb[t - 300]),
	};
	`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if spec.TimeDomain.Count() != 18000 {
		t.Errorf("domain count = %d", spec.TimeDomain.Count())
	}
	if spec.Videos["vid1"] != "video1.vmf" || spec.DataFiles["vid1_bb"] != "annot1.json" {
		t.Error("bindings wrong")
	}
	if spec.DataSQL["counts"] == "" {
		t.Error("sql binding missing")
	}
	if spec.Output == nil || spec.Output.Width != 128 || !spec.Output.FPS.Equal(rational.FromInt(30)) {
		t.Errorf("output = %+v", spec.Output)
	}
	// Data refs resolved.
	m := spec.Render.(Match)
	call := m.Arms[1].Body.(Call)
	if _, ok := call.Args[1].(DataRef); !ok {
		t.Errorf("vid1_bb should resolve to DataRef, got %T", call.Args[1])
	}
	if _, ok := call.Args[0].(VideoRef); !ok {
		t.Errorf("vid2 should resolve to VideoRef, got %T", call.Args[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"missing domain":  `render(t) = vid[t]; videos { vid: "x"; }`,
		"missing render":  `timedomain range(0, 1, 1);`,
		"bad section":     `bogus { }`,
		"undeclared name": `timedomain range(0,1,1); render(t) = vid[t];`,
		"reserved name":   `timedomain range(0,1,1); videos { match: "x"; } render(t) = match[t];`,
		"dup binding":     `timedomain range(0,1,1); videos { v: "x"; v: "y"; } render(t) = v[t];`,
		"zero step":       `timedomain range(0, 1, 0); videos { v: "x"; } render(t) = v[t];`,
		"bad guard":       `timedomain range(0,1,1); videos { v: "x"; } render(t) = match t { 5 > 2 => v[t] };`,
		"non-const guard": `timedomain range(0,1,1); videos { v: "x"; } render(t) = match t { {t} => v[t] };`,
		"bare name":       `timedomain range(0,1,1); videos { v: "x"; } render(t) = v;`,
		"range as expr":   `timedomain range(0,1,1); videos { v: "x"; } render(t) = range(0,1,1);`,
		"unterminated":    `timedomain range(0,1,1); videos { v: "x; } render(t) = v[t];`,
		"bad escape":      `timedomain range(0,1,1); videos { v: "\q"; } render(t) = v[t];`,
		"index non-name":  `timedomain range(0,1,1); videos { v: "x"; } render(t) = zoom(v[t],2)[t];`,
		"render param":    `timedomain range(0,1,1); videos { v: "x"; } render(x) = v[t];`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	srcs := []string{
		`timedomain range(0, 10, 1/24);
		videos { v: "a.vmf"; w: "b.vmf"; }
		render(t) = match t {
			t in range(0, 5, 1/24) => v[t],
			t in range(5, 10, 1/24) => grid(v[t], zoom(w[t], 2), blur(w[t], 1.5), v[t + 1/24]),
		};`,
		`timedomain range(0, 3, 1);
		videos { v: "a.vmf"; }
		data { a: "ann.json"; }
		render(t) = if a[t] < 5 then v[t] else zoom(v[t], 2);`,
		`timedomain range(0, 2, 1/2);
		videos { v: "a.vmf"; }
		output { width: 64; height: 36; fps: 24; }
		render(t) = grade(v[t], -10, 1.5, 0.5);`,
	}
	for i, src := range srcs {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		text := Format(s1)
		s2, err := Parse(text)
		if err != nil {
			t.Fatalf("spec %d reparse: %v\n%s", i, err, text)
		}
		if !s1.Render.EqualExpr(s2.Render) {
			t.Errorf("spec %d render round-trip differs:\n%s\nvs\n%s", i, s1.Render, s2.Render)
		}
		if !s1.TimeDomain.Start.Equal(s2.TimeDomain.Start) || s1.TimeDomain.Count() != s2.TimeDomain.Count() {
			t.Errorf("spec %d domain round-trip differs", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := `
	timedomain range(0, 10, 1/30);
	videos { v: "a.vmf"; w: "b.vmf"; }
	data { bb: "ann.json"; }
	render(t) = match t {
		t in range(0, 5, 1/30) => boxes(v[t], bb[t]),
		t in {5, 6} => ifthenelse(count(bb[t]) > 0, v[t], w[t - 5]),
		t in range(7, 10, 1/30) => grade(overlay(v[t], w[t], 4, 4, 200), 0, 1.1, -0.5),
	};`
	s1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalSpecJSON(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := UnmarshalSpecJSON(raw)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, raw)
	}
	if !s1.Render.EqualExpr(s2.Render) {
		t.Errorf("render differs:\n%s\nvs\n%s", s1.Render, s2.Render)
	}
	if s2.Videos["v"] != "a.vmf" || s2.DataFiles["bb"] != "ann.json" {
		t.Error("bindings lost")
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`{"timedomain":{"start":[0,1],"end":[1,1],"step":[0,1]},"render":{"op":"time"}}`,
		`{"timedomain":{"start":[0,1],"end":[1,1],"step":[1,1]},"render":{"op":"wat"}}`,
		`{"timedomain":{"start":[0,1],"end":[1,1],"step":[1,1]},"render":{"op":"video","name":"v","index":{"op":"time"}}}`,
		`{"timedomain":{"start":[0,1],"end":[1,1],"step":[1,1]}}`,
	}
	for i, raw := range bad {
		if _, err := UnmarshalSpecJSON([]byte(raw)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register did not panic")
		}
	}()
	Register(&Transform{Name: "zoom"})
}

func TestRegisterUDF(t *testing.T) {
	Register(&Transform{
		Name: "testudf_invert", Params: []Type{TypeFrame}, Result: TypeFrame, PreservesFormat: true,
		Eval: func(args []Val) (Val, error) {
			out := args[0].Frame.Clone()
			p := out.Planes()
			for i := range p[0] {
				p[0][i] = 255 - p[0][i]
			}
			return FrameVal(out), nil
		},
	})
	v, err := Eval(mustParseExpr(t, "testudf_invert(vid[t])"), env(rational.Zero))
	if err != nil || v.Type != TypeFrame {
		t.Fatalf("udf eval: %v %v", v, err)
	}
	found := false
	for _, n := range TransformNames() {
		if n == "testudf_invert" {
			found = true
		}
	}
	if !found {
		t.Error("udf not listed")
	}
}

func TestSpecCloneIndependence(t *testing.T) {
	s, err := Parse(`timedomain range(0,1,1); videos { v: "x"; } render(t) = v[t];`)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.Videos["v"] = "changed"
	if s.Videos["v"] != "x" {
		t.Error("clone shares video map")
	}
}

func TestUsesTimeAndWalk(t *testing.T) {
	e := mustParseExpr(t, "zoom(vid[t], 2)")
	if !UsesTime(e) {
		t.Error("should use time")
	}
	if UsesTime(mustParseExpr(t, "zoom(vid[5], 2)")) {
		t.Error("constant index should not use time")
	}
	count := 0
	Walk(e, func(Expr) { count++ })
	if count != 4 { // call, videoref, timevar, numlit
		t.Errorf("walk count = %d", count)
	}
}

func TestValHelpers(t *testing.T) {
	if !NumV(rat(3, 2)).Truthy() || NumV(rational.Zero).Truthy() {
		t.Error("num truthy")
	}
	if NumV(rat(7, 2)).Int() != 3 {
		t.Error("int floor")
	}
	if NumV(rat(1, 2)).Float() != 0.5 {
		t.Error("float")
	}
	if !strings.Contains(FrameVal(frame.New(4, 4, frame.FormatGray8)).String(), "4x4") {
		t.Error("frame string")
	}
	if FromData(data.NumVal(0.25)).Num.String() != "1/4" {
		t.Errorf("FromData num = %v", FromData(data.NumVal(0.25)).Num)
	}
	if FromData(data.StrVal("x")).Str != "x" || !FromData(data.BoolVal(true)).Bool {
		t.Error("FromData scalar")
	}
	if FromData(data.Null()).Type != TypeNull {
		t.Error("FromData null")
	}
	if DataKindType(data.KindBoxes) != TypeBoxes || DataKindType(data.KindNull) != TypeNull {
		t.Error("DataKindType")
	}
}

func TestComposeTransformsEval(t *testing.T) {
	e := env(rational.One)
	for _, src := range []string{
		"hstack(a[t], b[t])",
		"vstack(a[t], b[t])",
		"pip(a[t], b[t], 4, 4, 4)",
		"gridn(a[t], b[t], c[t])",
	} {
		v, err := Eval(mustParseExpr(t, src), e)
		if err != nil || v.Type != TypeFrame {
			t.Errorf("%q: %v %v", src, v, err)
		}
	}
}

func TestTransformArgValidation(t *testing.T) {
	e := env(rational.One)
	bad := []string{
		"scale(vid[t], 15, 16)",          // odd width
		"scale(vid[t], 0, 16)",           // zero
		"crop(vid[t], 1, 0, 16, 16)",     // odd x
		"crop(vid[t], 0, 0, 64, 64)",     // out of bounds (32x32 fake frames)
		"crop(vid[t], -2, 0, 16, 16)",    // negative
		"crossfade(vid[t], big[t], 0.5)", // shape mismatch handled below
	}
	for _, src := range bad[:5] {
		if _, err := Eval(mustParseExpr(t, src), e); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
	// Shape mismatch: build frames of different sizes directly.
	small := FrameVal(frame.New(16, 16, frame.FormatYUV420))
	big := FrameVal(frame.New(32, 32, frame.FormatYUV420))
	for _, name := range []string{"crossfade", "wipe"} {
		tr, _ := Lookup(name)
		if _, err := tr.Eval([]Val{small, big, NumV(rat(1, 2))}); err == nil {
			t.Errorf("%s shape mismatch should error", name)
		}
	}
}
