package vql

import (
	"fmt"

	"v2v/internal/data"
	"v2v/internal/frame"
	"v2v/internal/rational"
)

var (
	ratZero = rational.Zero
	ratOne  = rational.One
)

func intRat(n int) rational.Rat { return rational.FromInt(int64(n)) }

// FrameSource provides source frames by video name and time. The execution
// engine and baseline engine supply implementations backed by media
// readers; tests supply synthetic ones.
type FrameSource interface {
	SourceFrame(video string, t rational.Rat) (*frame.Frame, error)
}

// DataSource provides data array samples by name and time.
type DataSource interface {
	// DataAt returns the sample of the named array at time t. Missing
	// samples return (Null, false, nil); unknown arrays return an error.
	DataAt(name string, t rational.Rat) (data.Value, bool, error)
}

// Env is the evaluation environment for one render invocation.
type Env struct {
	T      rational.Rat
	Frames FrameSource
	Data   DataSource
	// Ext evaluates expression node types Eval does not know about
	// (e.g. the planner's port references). It is consulted before Eval
	// reports an unknown-node error.
	Ext func(Expr, *Env) (Val, bool, error)
}

// Eval computes the value of e in env. It is the reference semantics of
// the language: the baseline engine is exactly Eval applied per output
// time, and the optimizer's output must agree with it frame-for-frame.
func Eval(e Expr, env *Env) (Val, error) {
	switch n := e.(type) {
	case TimeVar:
		return NumV(env.T), nil
	case NumLit:
		return NumV(n.V), nil
	case StrLit:
		return StrV(n.V), nil
	case BoolLit:
		return BoolV(n.V), nil
	case NullLit:
		return NullV(), nil
	case Neg:
		v, err := Eval(n.E, env)
		if err != nil {
			return Val{}, err
		}
		if v.Type != TypeNum {
			return Val{}, fmt.Errorf("vql: cannot negate %v", v.Type)
		}
		return NumV(v.Num.Neg()), nil
	case Not:
		v, err := Eval(n.E, env)
		if err != nil {
			return Val{}, err
		}
		return BoolV(!v.Truthy()), nil
	case BinOp:
		return evalBinOp(n, env)
	case VideoRef:
		idx, err := Eval(n.Index, env)
		if err != nil {
			return Val{}, err
		}
		if idx.Type != TypeNum {
			return Val{}, fmt.Errorf("vql: video index must be a time, got %v", idx.Type)
		}
		if env.Frames == nil {
			return Val{}, fmt.Errorf("vql: no frame source for %s[%s]", n.Name, idx.Num)
		}
		fr, err := env.Frames.SourceFrame(n.Name, idx.Num)
		if err != nil {
			return Val{}, err
		}
		return FrameVal(fr), nil
	case DataRef:
		idx, err := Eval(n.Index, env)
		if err != nil {
			return Val{}, err
		}
		if idx.Type != TypeNum {
			return Val{}, fmt.Errorf("vql: data index must be a time, got %v", idx.Type)
		}
		if env.Data == nil {
			return Val{}, fmt.Errorf("vql: no data source for %s[%s]", n.Name, idx.Num)
		}
		v, ok, err := env.Data.DataAt(n.Name, idx.Num)
		if err != nil {
			return Val{}, err
		}
		if !ok {
			return NullV(), nil
		}
		return FromData(v), nil
	case Call:
		tr, ok := Lookup(n.Name)
		if !ok {
			return Val{}, fmt.Errorf("vql: unknown transform %q", n.Name)
		}
		if err := tr.CheckArity(len(n.Args)); err != nil {
			return Val{}, err
		}
		args := make([]Val, len(n.Args))
		for i, a := range n.Args {
			v, err := Eval(a, env)
			if err != nil {
				return Val{}, err
			}
			args[i] = v
		}
		return tr.Eval(args)
	case Match:
		body := n.ArmFor(env.T)
		if body == nil {
			return Val{}, fmt.Errorf("vql: no match arm covers t = %s", env.T)
		}
		return Eval(body, env)
	default:
		if env.Ext != nil {
			if v, ok, err := env.Ext(e, env); ok || err != nil {
				return v, err
			}
		}
		return Val{}, fmt.Errorf("vql: cannot evaluate %T", e)
	}
}

func evalBinOp(n BinOp, env *Env) (Val, error) {
	// Short-circuit logic first.
	switch n.Op {
	case OpAnd:
		l, err := Eval(n.L, env)
		if err != nil {
			return Val{}, err
		}
		if !l.Truthy() {
			return BoolV(false), nil
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return Val{}, err
		}
		return BoolV(r.Truthy()), nil
	case OpOr:
		l, err := Eval(n.L, env)
		if err != nil {
			return Val{}, err
		}
		if l.Truthy() {
			return BoolV(true), nil
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return Val{}, err
		}
		return BoolV(r.Truthy()), nil
	}
	l, err := Eval(n.L, env)
	if err != nil {
		return Val{}, err
	}
	r, err := Eval(n.R, env)
	if err != nil {
		return Val{}, err
	}
	switch n.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		if l.Type != TypeNum || r.Type != TypeNum {
			return Val{}, fmt.Errorf("vql: arithmetic needs numbers, got %v %s %v", l.Type, binOpNames[n.Op], r.Type)
		}
		switch n.Op {
		case OpAdd:
			return NumV(l.Num.Add(r.Num)), nil
		case OpSub:
			return NumV(l.Num.Sub(r.Num)), nil
		case OpMul:
			return NumV(l.Num.Mul(r.Num)), nil
		default:
			if r.Num.Sign() == 0 {
				return Val{}, fmt.Errorf("vql: division by zero")
			}
			return NumV(l.Num.Div(r.Num)), nil
		}
	case OpLT, OpLE, OpGT, OpGE:
		if l.Type != TypeNum || r.Type != TypeNum {
			return Val{}, fmt.Errorf("vql: ordering needs numbers, got %v %s %v", l.Type, binOpNames[n.Op], r.Type)
		}
		c := l.Num.Cmp(r.Num)
		switch n.Op {
		case OpLT:
			return BoolV(c < 0), nil
		case OpLE:
			return BoolV(c <= 0), nil
		case OpGT:
			return BoolV(c > 0), nil
		default:
			return BoolV(c >= 0), nil
		}
	case OpEQ, OpNE:
		eq, err := valsEqual(l, r)
		if err != nil {
			return Val{}, err
		}
		if n.Op == OpNE {
			eq = !eq
		}
		return BoolV(eq), nil
	}
	return Val{}, fmt.Errorf("vql: unknown operator")
}

func valsEqual(l, r Val) (bool, error) {
	if l.Type == TypeNull || r.Type == TypeNull {
		return l.Type == r.Type, nil
	}
	if l.Type != r.Type {
		return false, nil
	}
	switch l.Type {
	case TypeNum:
		return l.Num.Equal(r.Num), nil
	case TypeBool:
		return l.Bool == r.Bool, nil
	case TypeStr:
		return l.Str == r.Str, nil
	case TypeBoxes:
		if len(l.Boxes) != len(r.Boxes) {
			return false, nil
		}
		for i := range l.Boxes {
			if l.Boxes[i] != r.Boxes[i] {
				return false, nil
			}
		}
		return true, nil
	case TypeFrame:
		return false, fmt.Errorf("vql: frames are not comparable")
	}
	return false, nil
}
