package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"v2v/internal/frame"
)

func testConfig() Config {
	return Config{Width: 64, Height: 48, Quality: 1, GOP: 5, Level: 4}
}

// genFrames produces n deterministic frames with temporal coherence (a
// moving gradient) plus a frame-ID stamp.
func genFrames(cfg Config, n int, seed int64) []*frame.Frame {
	rnd := rand.New(rand.NewSource(seed))
	base := byte(rnd.Intn(100))
	out := make([]*frame.Frame, n)
	for i := range out {
		fr := frame.New(cfg.Width, cfg.Height, frame.FormatYUV420)
		p := fr.Planes()
		for y := 0; y < cfg.Height; y++ {
			for x := 0; x < cfg.Width; x++ {
				p[0][y*cfg.Width+x] = byte(int(base) + x + y + i*3)
			}
		}
		for j := range p[1] {
			p[1][j] = byte(100 + i)
			p[2][j] = byte(150 - i)
		}
		out[i] = fr
	}
	return out
}

func encodeAll(t *testing.T, cfg Config, frames []*frame.Frame) []Packet {
	t.Helper()
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	pkts := make([]Packet, len(frames))
	for i, fr := range frames {
		pkts[i], err = enc.Encode(fr)
		if err != nil {
			t.Fatalf("Encode[%d]: %v", i, err)
		}
	}
	return pkts
}

func decodeAll(t *testing.T, cfg Config, pkts []Packet) []*frame.Frame {
	t.Helper()
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	out := make([]*frame.Frame, len(pkts))
	for i, p := range pkts {
		fr, err := dec.Decode(p.Data)
		if err != nil {
			t.Fatalf("Decode[%d]: %v", i, err)
		}
		out[i] = fr
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 48},
		{Width: 64, Height: -2},
		{Width: 63, Height: 48},
		{Width: 64, Height: 47},
		{Width: 64, Height: 48, Quality: 65},
		{Width: 64, Height: 48, Quality: 1, GOP: 1, Level: 10},
	}
	for i, c := range bad {
		if err := c.Defaults().Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("test config invalid: %v", err)
	}
	if _, err := NewEncoder(Config{Width: 10, Height: 11}); err == nil {
		t.Error("NewEncoder should reject odd height")
	}
	if _, err := NewDecoder(Config{Width: 0, Height: 0}); err == nil {
		t.Error("NewDecoder should reject zero dims")
	}
}

func TestDefaults(t *testing.T) {
	d := Config{Width: 2, Height: 2}.Defaults()
	if d.Quality != 1 || d.GOP != 48 || d.Level != 6 {
		t.Errorf("defaults = %+v", d)
	}
}

func TestLosslessRoundTrip(t *testing.T) {
	cfg := testConfig()
	frames := genFrames(cfg, 12, 1)
	pkts := encodeAll(t, cfg, frames)
	decoded := decodeAll(t, cfg, pkts)
	for i := range frames {
		if !frames[i].Equal(decoded[i]) {
			t.Fatalf("frame %d not lossless at Q=1", i)
		}
	}
}

func TestLosslessRandomNoise(t *testing.T) {
	// Worst-case content: pure noise must still round-trip exactly at Q=1.
	cfg := testConfig()
	rnd := rand.New(rand.NewSource(42))
	frames := make([]*frame.Frame, 6)
	for i := range frames {
		fr := frame.New(cfg.Width, cfg.Height, frame.FormatYUV420)
		for j := range fr.Pix {
			fr.Pix[j] = byte(rnd.Intn(256))
		}
		frames[i] = fr
	}
	decoded := decodeAll(t, cfg, encodeAll(t, cfg, frames))
	for i := range frames {
		if !frames[i].Equal(decoded[i]) {
			t.Fatalf("noise frame %d not lossless", i)
		}
	}
}

func TestGOPStructure(t *testing.T) {
	cfg := testConfig() // GOP 5
	pkts := encodeAll(t, cfg, genFrames(cfg, 12, 2))
	for i, p := range pkts {
		wantKey := i%5 == 0
		if p.Key != wantKey {
			t.Errorf("packet %d key = %v, want %v", i, p.Key, wantKey)
		}
		if PacketIsKey(p.Data) != p.Key {
			t.Errorf("packet %d PacketIsKey mismatch", i)
		}
	}
}

func TestForceKeyframe(t *testing.T) {
	cfg := testConfig()
	enc, _ := NewEncoder(cfg)
	frames := genFrames(cfg, 4, 3)
	if p, _ := enc.Encode(frames[0]); !p.Key {
		t.Fatal("first frame must be key")
	}
	if p, _ := enc.Encode(frames[1]); p.Key {
		t.Fatal("second frame should be P")
	}
	enc.ForceKeyframe()
	if p, _ := enc.Encode(frames[2]); !p.Key {
		t.Fatal("forced frame should be key")
	}
	// GOP counter restarts after a forced keyframe.
	if p, _ := enc.Encode(frames[3]); p.Key {
		t.Fatal("frame after forced key should be P")
	}
}

func TestDecodeRequiresKeyframe(t *testing.T) {
	cfg := testConfig()
	pkts := encodeAll(t, cfg, genFrames(cfg, 3, 4))
	dec, _ := NewDecoder(cfg)
	if _, err := dec.Decode(pkts[1].Data); err != ErrNeedKeyframe {
		t.Fatalf("P-first decode err = %v, want ErrNeedKeyframe", err)
	}
	// After the keyframe it works.
	if _, err := dec.Decode(pkts[0].Data); err != nil {
		t.Fatalf("keyframe decode: %v", err)
	}
	if _, err := dec.Decode(pkts[1].Data); err != nil {
		t.Fatalf("P decode: %v", err)
	}
	// Reset drops the reference again.
	dec.Reset()
	if _, err := dec.Decode(pkts[2].Data); err != ErrNeedKeyframe {
		t.Fatalf("post-Reset P decode err = %v", err)
	}
}

func TestPartialGOPDecode(t *testing.T) {
	// Decoding from a mid-stream keyframe (open-at-keyframe) must produce
	// the same frames as decoding from the start — the property smart cuts
	// depend on.
	cfg := testConfig()
	frames := genFrames(cfg, 12, 5)
	pkts := encodeAll(t, cfg, frames)
	full := decodeAll(t, cfg, pkts)

	dec, _ := NewDecoder(cfg)
	for i := 5; i < 10; i++ { // packet 5 is a keyframe (GOP=5)
		fr, err := dec.Decode(pkts[i].Data)
		if err != nil {
			t.Fatalf("partial decode[%d]: %v", i, err)
		}
		if !fr.Equal(full[i]) {
			t.Fatalf("partial decode frame %d differs from full decode", i)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	dec, _ := NewDecoder(testConfig())
	if _, err := dec.Decode(nil); err == nil {
		t.Error("empty packet should error")
	}
	if _, err := dec.Decode([]byte{0x00, 1, 2}); err == nil {
		t.Error("unknown frame type should error")
	}
	if _, err := dec.Decode([]byte{frameTypeI, 1, 2, 3}); err == nil {
		t.Error("truncated flate data should error")
	}
}

func TestEncodeWrongShape(t *testing.T) {
	enc, _ := NewEncoder(testConfig())
	wrong := frame.New(32, 32, frame.FormatYUV420)
	if _, err := enc.Encode(wrong); err == nil {
		t.Error("wrong dimensions should error")
	}
	gray := frame.New(64, 48, frame.FormatGray8)
	if _, err := enc.Encode(gray); err == nil {
		t.Error("wrong format should error")
	}
}

func TestLossyQualityBounds(t *testing.T) {
	cfg := testConfig()
	cfg.Quality = 4
	frames := genFrames(cfg, 10, 6)
	decoded := decodeAll(t, cfg, encodeAll(t, cfg, frames))
	for i := range frames {
		psnr := frame.PSNR(frames[i], decoded[i])
		if psnr < 38 {
			t.Errorf("frame %d PSNR = %.1f at Q=4, want >= 38", i, psnr)
		}
	}
}

func TestLossyCompressesSmaller(t *testing.T) {
	// Noisy content: lossless coding must store the noise, while a coarse
	// quantizer collapses it to few symbols.
	cfg := testConfig()
	rnd := rand.New(rand.NewSource(7))
	frames := make([]*frame.Frame, 8)
	for i := range frames {
		fr := frame.New(cfg.Width, cfg.Height, frame.FormatYUV420)
		for j := range fr.Pix {
			fr.Pix[j] = byte(100 + rnd.Intn(16))
		}
		frames[i] = fr
	}
	lossless := encodeAll(t, cfg, frames)
	cfg.Quality = 16
	lossy := encodeAll(t, cfg, frames)
	var a, b int
	for i := range lossless {
		a += len(lossless[i].Data)
		b += len(lossy[i].Data)
	}
	if b >= a {
		t.Errorf("lossy total %d >= lossless total %d", b, a)
	}
}

func TestStampSurvivesLossyCoding(t *testing.T) {
	cfg := Config{Width: 192, Height: 48, Quality: 8, GOP: 4, Level: 4}
	frames := genFrames(cfg, 8, 8)
	for i, fr := range frames {
		frame.Stamp(fr, uint32(1000+i))
	}
	decoded := decodeAll(t, cfg, encodeAll(t, cfg, frames))
	for i, fr := range decoded {
		id, ok := frame.ReadStamp(fr)
		if !ok || id != uint32(1000+i) {
			t.Fatalf("frame %d stamp = %d,%v after lossy coding", i, id, ok)
		}
	}
}

func TestAllIntra(t *testing.T) {
	cfg := testConfig()
	cfg.GOP = 1
	pkts := encodeAll(t, cfg, genFrames(cfg, 6, 9))
	for i, p := range pkts {
		if !p.Key {
			t.Errorf("all-intra packet %d not key", i)
		}
	}
}

func TestPropertyLosslessRoundTrip(t *testing.T) {
	cfg := Config{Width: 16, Height: 16, Quality: 1, GOP: 3, Level: 1}
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	if err := quick.Check(func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		fr := frame.New(16, 16, frame.FormatYUV420)
		for i := range fr.Pix {
			fr.Pix[i] = byte(rnd.Intn(256))
		}
		pkt, err := enc.Encode(fr)
		if err != nil {
			return false
		}
		got, err := dec.Decode(pkt.Data)
		return err == nil && got.Equal(fr)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLossyErrorBounded(t *testing.T) {
	// Reconstruction error per pixel is bounded by the quantizer step for
	// P-frames against a stable reference.
	for _, q := range []int{2, 4, 8} {
		cfg := Config{Width: 16, Height: 16, Quality: q, GOP: 1, Level: 1}
		enc, _ := NewEncoder(cfg)
		dec, _ := NewDecoder(cfg)
		fr := frame.New(16, 16, frame.FormatYUV420)
		rnd := rand.New(rand.NewSource(int64(q)))
		// Smooth content keeps intra prediction errors small enough that
		// quantized residuals don't clip.
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				fr.Planes()[0][y*16+x] = byte(60 + x + y + rnd.Intn(3))
			}
		}
		pkt, _ := enc.Encode(fr)
		got, err := dec.Decode(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fr.Pix {
			d := int(fr.Pix[i]) - int(got.Pix[i])
			if d < 0 {
				d = -d
			}
			if d > q {
				t.Fatalf("q=%d pixel %d error %d exceeds step", q, i, d)
			}
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	cfg := Config{Width: 384, Height: 216, Quality: 1, GOP: 24, Level: 4}
	frames := genFramesB(cfg, 8)
	enc, _ := NewEncoder(cfg)
	b.SetBytes(int64(frame.FormatYUV420.Size(cfg.Width, cfg.Height)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	cfg := Config{Width: 384, Height: 216, Quality: 1, GOP: 24, Level: 4}
	frames := genFramesB(cfg, 8)
	enc, _ := NewEncoder(cfg)
	pkts := make([]Packet, len(frames))
	for i, fr := range frames {
		pkts[i], _ = enc.Encode(fr)
	}
	dec, _ := NewDecoder(cfg)
	b.SetBytes(int64(frame.FormatYUV420.Size(cfg.Width, cfg.Height)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(pkts) == 0 {
			dec.Reset()
		}
		if _, err := dec.Decode(pkts[i%len(pkts)].Data); err != nil {
			b.Fatal(err)
		}
	}
}

func genFramesB(cfg Config, n int) []*frame.Frame {
	out := make([]*frame.Frame, n)
	for i := range out {
		fr := frame.New(cfg.Width, cfg.Height, frame.FormatYUV420)
		p := fr.Planes()
		for y := 0; y < cfg.Height; y++ {
			for x := 0; x < cfg.Width; x++ {
				p[0][y*cfg.Width+x] = byte(x ^ y + i*5)
			}
		}
		out[i] = fr
	}
	return out
}

func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	// Random bytes must yield errors, not panics or hangs.
	cfg := Config{Width: 32, Height: 32, Quality: 1, GOP: 4, Level: 1}
	dec, _ := NewDecoder(cfg)
	rnd := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := rnd.Intn(200)
		data := make([]byte, n)
		rnd.Read(data)
		if trial%3 == 0 && n > 0 {
			data[0] = frameTypeI // valid type byte, garbage body
		}
		dec.Decode(data) // must not panic; error or (rarely) junk frame
	}
}

func TestDecodeCorruptedValidPacket(t *testing.T) {
	cfg := testConfig()
	pkts := encodeAll(t, cfg, genFrames(cfg, 2, 21))
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		dec, _ := NewDecoder(cfg)
		data := append([]byte(nil), pkts[0].Data...)
		data[1+rnd.Intn(len(data)-1)] ^= byte(1 + rnd.Intn(255))
		dec.Decode(data) // corrupt flate stream: error or wrong pixels, no panic
	}
}

func TestRecycleLosslessRoundTrip(t *testing.T) {
	// Recycling each packet after it is decoded must not corrupt the
	// stream: the next Encode reuses the buffer, not the decoded bytes.
	cfg := testConfig()
	frames := genFrames(cfg, 12, 9)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	for i, fr := range frames {
		pkt, err := enc.Encode(fr)
		if err != nil {
			t.Fatalf("Encode[%d]: %v", i, err)
		}
		got, err := dec.Decode(pkt.Data)
		enc.Recycle(pkt)
		if err != nil {
			t.Fatalf("Decode[%d]: %v", i, err)
		}
		if !fr.Equal(got) {
			t.Fatalf("frame %d not lossless with recycled packet buffers", i)
		}
	}
}

func TestEncodeRecycleSteadyStateAllocs(t *testing.T) {
	// With the output packet recycled, the steady-state encode loop must
	// be allocation-free: reconstructions ping-pong, the flate writer and
	// scratch buffers are reused, and the packet bytes come from the
	// recycle slot.
	cfg := testConfig()
	frames := genFrames(cfg, 10, 4)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	i := 0
	encodeOne := func() {
		pkt, err := enc.Encode(frames[i%len(frames)])
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		enc.Recycle(pkt)
		i++
	}
	for warm := 0; warm < 3*len(frames); warm++ {
		encodeOne()
	}
	if allocs := testing.AllocsPerRun(50, encodeOne); allocs > 0 {
		t.Errorf("steady-state Encode+Recycle allocates %.1f per packet, want 0", allocs)
	}
}
