// Package codec implements GV1, a GOP-structured predictive video codec
// over YUV420 frames.
//
// GV1 stands in for H.264 in this reproduction. What matters to the V2V
// optimizer is not compression quality but the structural properties shared
// with every inter-frame codec:
//
//   - Keyframes (I-frames) are decodable in isolation; delta frames
//     (P-frames) require every frame since the previous keyframe, so
//     decoding must start at a keyframe boundary (a group of pictures).
//   - Encoding is much more expensive than decoding (prediction plus
//     entropy-coding search vs. entropy decode plus reconstruction).
//   - Copying an encoded packet is near memcpy speed.
//
// These asymmetries are exactly what stream copying and smart cuts exploit.
//
// Coding scheme: I-frames use left/top spatial prediction, P-frames use
// temporal prediction from the previously *reconstructed* frame (so encoder
// and decoder reconstructions match bit-for-bit). Residuals are uniformly
// quantized by Quality (Quality 1 uses modular arithmetic and is exactly
// lossless) and entropy-coded with DEFLATE.
package codec

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"time"

	"v2v/internal/frame"
	"v2v/internal/obs"
)

// FourCC identifies the codec in container stream headers.
const FourCC = "GV10"

// Frame type markers, the first byte of every packet.
const (
	frameTypeI = 0x49 // 'I'
	frameTypeP = 0x50 // 'P'
)

// Config holds the coding parameters shared by encoder and decoder. Width
// and Height must be positive and even. Quality is the quantizer step
// (1 = lossless, larger = lossier and smaller). GOP is the keyframe
// interval in frames (1 = all-intra). Level is the DEFLATE effort.
type Config struct {
	Width, Height int
	Quality       int
	GOP           int
	Level         int
}

// Defaults fills unset fields: Quality 1, GOP 48, Level 6.
func (c Config) Defaults() Config {
	if c.Quality <= 0 {
		c.Quality = 1
	}
	if c.GOP <= 0 {
		c.GOP = 48
	}
	if c.Level == 0 {
		c.Level = 6
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("codec: invalid dimensions %dx%d", c.Width, c.Height)
	}
	if c.Width%2 != 0 || c.Height%2 != 0 {
		return fmt.Errorf("codec: dimensions %dx%d must be even", c.Width, c.Height)
	}
	if c.Quality < 1 || c.Quality > 64 {
		return fmt.Errorf("codec: quality %d out of range [1,64]", c.Quality)
	}
	if c.GOP < 1 {
		return fmt.Errorf("codec: GOP %d must be >= 1", c.GOP)
	}
	if c.Level < -2 || c.Level > 9 {
		return fmt.Errorf("codec: flate level %d out of range", c.Level)
	}
	return nil
}

// Packet is one encoded frame.
type Packet struct {
	Key  bool
	Data []byte
}

// Encoder encodes a sequence of frames into packets. Not safe for
// concurrent use.
type Encoder struct {
	cfg      Config
	prev     *frame.Frame // previous reconstruction; nil before first frame
	spare    *frame.Frame // retired reconstruction, reused for the next one
	count    int          // frames since last keyframe
	forceKey bool
	resid    []byte
	buf      bytes.Buffer
	fw       *flate.Writer
	sparePkt []byte // recycled packet buffer (see Recycle)
	rec      *obs.Recorder
}

// NewEncoder returns an encoder for the given configuration.
func NewEncoder(cfg Config) (*Encoder, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fw, err := flate.NewWriter(io.Discard, cfg.Level)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return &Encoder{cfg: cfg, fw: fw, resid: make([]byte, frame.FormatYUV420.Size(cfg.Width, cfg.Height))}, nil
}

// Config returns the encoder's configuration (with defaults applied).
func (e *Encoder) Config() Config { return e.cfg }

// ForceKeyframe makes the next encoded frame an I-frame. Smart cuts use
// this to restart prediction at splice boundaries.
func (e *Encoder) ForceKeyframe() { e.forceKey = true }

// SetRecorder attributes this encoder's work to a per-request recorder.
// The process-wide encode-stage metrics are updated either way.
func (e *Encoder) SetRecorder(rec *obs.Recorder) { e.rec = rec }

// Encode compresses fr and returns its packet. fr must be YUV420 with the
// configured dimensions.
func (e *Encoder) Encode(fr *frame.Frame) (Packet, error) {
	if fr.Format != frame.FormatYUV420 || fr.W != e.cfg.Width || fr.H != e.cfg.Height {
		return Packet{}, fmt.Errorf("codec: frame %dx%d %v does not match config %dx%d yuv420",
			fr.W, fr.H, fr.Format, e.cfg.Width, e.cfg.Height)
	}
	encStart := time.Now()
	isKey := e.prev == nil || e.count >= e.cfg.GOP || e.forceKey
	e.forceKey = false

	// Reconstructions ping-pong between two buffers: the retiring prev
	// becomes the spare for the encode after this one. Both frames are
	// internal (never returned), so reuse is safe and the steady-state
	// encode loop allocates nothing for reconstructions.
	recon := e.spare
	e.spare = nil
	if recon == nil {
		recon = frame.New(e.cfg.Width, e.cfg.Height, frame.FormatYUV420)
	}
	if isKey {
		e.encodeIntra(fr, recon)
	} else {
		e.encodePredicted(fr, recon)
	}

	e.buf.Reset()
	if isKey {
		e.buf.WriteByte(frameTypeI)
	} else {
		e.buf.WriteByte(frameTypeP)
	}
	e.fw.Reset(&e.buf)
	if _, err := e.fw.Write(e.resid); err != nil {
		return Packet{}, fmt.Errorf("codec: compress: %w", err)
	}
	if err := e.fw.Close(); err != nil {
		return Packet{}, fmt.Errorf("codec: compress: %w", err)
	}

	e.spare = e.prev
	e.prev = recon
	if isKey {
		e.count = 1
	} else {
		e.count++
	}
	// The output buffer comes from the recycle slot when the previous
	// packet was returned via Recycle; continuous-encode paths (media
	// writers, operator-boundary materialization) reach zero steady-state
	// allocations per packet this way.
	data := append(e.sparePkt[:0], e.buf.Bytes()...)
	e.sparePkt = nil
	e.rec.StageObserve(obs.StageEncode, 1, int64(len(data)), time.Since(encStart))
	return Packet{Key: isKey, Data: data}, nil
}

// Recycle hands a packet's buffer back to the encoder for reuse by the
// next Encode. Only recycle packets produced by this encoder whose bytes
// have been fully consumed (written to a container or stream, or
// decoded); the caller must not touch pkt.Data afterwards. Packets that
// are retained — result-cache fills, shard delivery queues — must never
// be recycled.
func (e *Encoder) Recycle(pkt Packet) {
	if cap(pkt.Data) > cap(e.sparePkt) {
		e.sparePkt = pkt.Data[:0]
	}
}

// encodeIntra writes the I-frame residual for fr into e.resid and the
// reconstruction into recon.
//
//v2v:hotpath
func (e *Encoder) encodeIntra(fr, recon *frame.Frame) {
	q := e.cfg.Quality
	off := 0
	sp, rp := fr.Planes(), recon.Planes()
	for pi := range sp {
		w, h := planeDims(e.cfg, pi)
		intraPlane(sp[pi], rp[pi], e.resid[off:off+w*h], w, h, q)
		off += w * h
	}
}

//v2v:hotpath
func intraPlane(src, recon, resid []byte, w, h, q int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			var pred int
			switch {
			case x > 0:
				pred = int(recon[i-1])
			case y > 0:
				pred = int(recon[i-w])
			default:
				pred = 128
			}
			resid[i], recon[i] = code(int(src[i]), pred, q)
		}
	}
}

// encodePredicted writes the P-frame residual (vs. e.prev) into e.resid.
//
//v2v:hotpath
func (e *Encoder) encodePredicted(fr, recon *frame.Frame) {
	q := e.cfg.Quality
	src, prev, rec := fr.Pix, e.prev.Pix, recon.Pix
	if q == 1 {
		for i := range src {
			b := src[i] - prev[i]
			e.resid[i] = b
			rec[i] = prev[i] + b
		}
		return
	}
	for i := range src {
		e.resid[i], rec[i] = code(int(src[i]), int(prev[i]), q)
	}
}

// code quantizes cur against pred with step q, returning the residual byte
// and the reconstructed value. q==1 is exactly lossless via modular
// arithmetic; q>1 zigzag-codes the quantized delta.
func code(cur, pred, q int) (resid, recon byte) {
	if q == 1 {
		b := byte(cur - pred)
		return b, byte(pred + int(b))
	}
	d := cur - pred
	var qv int
	if d >= 0 {
		qv = (d + q/2) / q
	} else {
		qv = -((-d + q/2) / q)
	}
	if qv > 127 {
		qv = 127
	} else if qv < -127 {
		qv = -127
	}
	r := pred + qv*q
	if r < 0 {
		r = 0
	} else if r > 255 {
		r = 255
	}
	return zigzag(qv), byte(r)
}

func zigzag(v int) byte {
	if v >= 0 {
		return byte(v << 1)
	}
	return byte(-v<<1 - 1)
}

func unzigzag(b byte) int {
	if b&1 == 0 {
		return int(b >> 1)
	}
	return -int(b>>1) - 1
}

// Decoder decodes packets back into frames. Decoding must start at a
// keyframe; feeding a P-packet first returns ErrNeedKeyframe. Not safe for
// concurrent use.
type Decoder struct {
	cfg   Config
	prev  *frame.Frame
	resid []byte
	rec   *obs.Recorder
	pool  *frame.Pool
}

// ErrNeedKeyframe is returned when a P-frame arrives with no reference —
// the structural constraint that forces plans to open GOPs at keyframes.
var ErrNeedKeyframe = errors.New("codec: packet stream must start at a keyframe")

// ErrUndecodable marks packets whose bitstream is structurally damaged
// (unknown frame type, corrupt or truncated DEFLATE payload). The
// executor's error-concealment mode matches this class to substitute the
// last good frame instead of failing the synthesis.
var ErrUndecodable = errors.New("codec: undecodable packet")

// NewDecoder returns a decoder for the given configuration.
func NewDecoder(cfg Config) (*Decoder, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Decoder{cfg: cfg, resid: make([]byte, frame.FormatYUV420.Size(cfg.Width, cfg.Height))}, nil
}

// Reset drops the reference frame, e.g. before seeking to a keyframe,
// releasing it back to the frame pool when one is attached.
func (d *Decoder) Reset() {
	if d.prev != nil {
		d.prev.Release()
		d.prev = nil
	}
}

// SetRecorder attributes this decoder's work to a per-request recorder.
// The process-wide decode-stage metrics are updated either way.
func (d *Decoder) SetRecorder(rec *obs.Recorder) { d.rec = rec }

// SetFramePool makes the decoder allocate output frames from p. Pooled
// output changes the ownership contract: the caller must Release each
// decoded frame when done with it. The decoder holds its own reference to
// the latest frame for P-frame prediction and drops it on the next Decode
// or Reset, so callers may Release in any order relative to later decodes.
func (d *Decoder) SetFramePool(p *frame.Pool) { d.pool = p }

// Decode decompresses one packet. The returned frame is owned by the
// caller (it is not reused by subsequent Decode calls); with a frame pool
// attached (SetFramePool), the caller must Release it when finished.
func (d *Decoder) Decode(data []byte) (*frame.Frame, error) {
	decStart := time.Now()
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: empty packet", ErrUndecodable)
	}
	ftype := data[0]
	if ftype != frameTypeI && ftype != frameTypeP {
		return nil, fmt.Errorf("%w: unknown frame type 0x%02x", ErrUndecodable, ftype)
	}
	if ftype == frameTypeP && d.prev == nil {
		return nil, ErrNeedKeyframe
	}
	fr := flate.NewReader(bytes.NewReader(data[1:]))
	if _, err := io.ReadFull(fr, d.resid); err != nil {
		return nil, fmt.Errorf("%w: decompress: %w", ErrUndecodable, err)
	}
	fr.Close()

	// Pooled frames carry stale pixels; both decode paths below write
	// every byte of every plane, so no clearing is needed.
	var out *frame.Frame
	if d.pool != nil {
		out = d.pool.Get(d.cfg.Width, d.cfg.Height, frame.FormatYUV420)
	} else {
		out = frame.New(d.cfg.Width, d.cfg.Height, frame.FormatYUV420)
	}
	q := d.cfg.Quality
	if ftype == frameTypeI {
		off := 0
		op := out.Planes()
		for pi := range op {
			w, h := planeDims(d.cfg, pi)
			decodeIntraPlane(d.resid[off:off+w*h], op[pi], w, h, q)
			off += w * h
		}
	} else {
		prev := d.prev.Pix
		if q == 1 {
			for i := range out.Pix {
				out.Pix[i] = prev[i] + d.resid[i]
			}
		} else {
			for i := range out.Pix {
				r := int(prev[i]) + unzigzag(d.resid[i])*q
				if r < 0 {
					r = 0
				} else if r > 255 {
					r = 255
				}
				out.Pix[i] = byte(r)
			}
		}
	}
	// The decoder keeps its own reference for P-frame prediction; the
	// caller's reference is theirs to Release. No-ops for unpooled frames.
	out.Retain()
	if d.prev != nil {
		d.prev.Release()
	}
	d.prev = out
	d.rec.StageObserve(obs.StageDecode, 1, int64(len(out.Pix)), time.Since(decStart))
	return out, nil
}

//v2v:hotpath
func decodeIntraPlane(resid, out []byte, w, h, q int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			var pred int
			switch {
			case x > 0:
				pred = int(out[i-1])
			case y > 0:
				pred = int(out[i-w])
			default:
				pred = 128
			}
			if q == 1 {
				out[i] = byte(pred + int(resid[i]))
			} else {
				r := pred + unzigzag(resid[i])*q
				if r < 0 {
					r = 0
				} else if r > 255 {
					r = 255
				}
				out[i] = byte(r)
			}
		}
	}
}

// PacketIsKey inspects a raw packet without decoding it.
func PacketIsKey(data []byte) bool {
	return len(data) > 0 && data[0] == frameTypeI
}

func planeDims(cfg Config, plane int) (w, h int) {
	if plane == 0 {
		return cfg.Width, cfg.Height
	}
	return cfg.Width / 2, cfg.Height / 2
}
