package lint

import (
	"go/ast"
	"go/types"
)

// Ledger enforces the acquire/release pairings the cache ledger and the
// tracer depend on:
//
//   - A span minted by StartSpan/Child/ChildThread (any method of those
//     names returning a type named Span) must be ended on every path:
//     an explicit End() on all branches, a defer (including a deferred
//     closure), or handing the span off (returning it, passing it to a
//     call, storing it, or capturing it in a closure — ownership moves
//     with it). Reassigning the span variable before it is ended
//     orphans the first span and is always a finding, as is dropping
//     the result of an acquire on the floor.
//   - A Reserve(...) bool acquisition (the Arbiter/BudgetClient ledger
//     protocol) must not discard its result, and when the result is
//     kept, a matching Release on the same receiver must be reachable
//     afterwards (directly, deferred, or via a previously defined local
//     closure), unless the bool is returned to the caller — that is the
//     admit() ownership-transfer idiom.
//
// The span analysis is a continuation-passing walk over statement
// lists: branches must all release (or terminate having released), a
// path that returns or panics while holding is a leak, and loops are
// treated conservatively (a leak inside the body is reported; a release
// inside the body does not count for the zero-iteration path, so the
// walk keeps scanning after the loop). Any non-receiver use of the span
// variable counts as an ownership hand-off; the escape hatch for
// intentional patterns beyond the analysis is //v2v:nolint(ledger) with
// a reason.
var Ledger = &Analyzer{
	Name: "ledger",
	Doc:  "Reserve/StartSpan-style acquisitions are released (Release/End) on all paths or ownership is handed off",
	Run:  runLedger,
}

func runLedger(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, body *ast.BlockStmt) {
			lg := &ledgerChecker{
				pass:          pass,
				closures:      collectClosures(pass, body),
				releaseMethod: "End",
				noun:          "span",
			}
			lg.checkStmt = lg.checkStmtAcquires
			lg.checkCond = func(cond ast.Expr, enclosing ast.Stmt, rest [][]ast.Stmt) {
				lg.checkReserveIn(cond, enclosing, rest)
			}
			lg.findAcquires(body.List, nil)
		})
	}
	return nil
}

// collectClosures maps local variables assigned a function literal
// (`fail := func(...) {...}`) to their bodies, so a call to fail()
// counts as whatever fail's body does. One level only.
func collectClosures(pass *Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			out[obj] = lit
		} else if obj := pass.Info.Uses[id]; obj != nil {
			out[obj] = lit
		}
		return true
	})
	return out
}

// ledgerChecker is the reusable obligation walk: findAcquires provides
// the continuation-passing statement scaffold, ensure/ensureStmt the
// all-paths release analysis, and flatEffect the per-statement effect
// classification. The protocol being checked is parameterized so other
// analyzers (poolcheck) can reuse the machinery with their own acquire
// matcher and release-method name.
type ledgerChecker struct {
	pass     *Pass
	closures map[types.Object]*ast.FuncLit

	// checkStmt is the acquire matcher findAcquires dispatches flat
	// statements to; checkCond (optional) handles acquisitions buried in
	// an if condition.
	checkStmt func(s ast.Stmt, rest [][]ast.Stmt)
	checkCond func(cond ast.Expr, enclosing ast.Stmt, rest [][]ast.Stmt)
	// releaseMethod discharges an obligation ("End" for spans, "Release"
	// for pooled frames); noun names the held resource in diagnostics.
	releaseMethod string
	noun          string
}

// isSpanAcquire reports whether call mints a span: a method named
// StartSpan/Child/ChildThread whose result is a type named Span.
func (lg *ledgerChecker) isSpanAcquire(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "StartSpan", "Child", "ChildThread":
	default:
		return false
	}
	obj := namedObjOf(lg.pass.Info.TypeOf(call))
	return obj != nil && obj.Name() == "Span"
}

// isReserve reports whether call is a Reserve method returning a single
// bool, and returns the receiver expression text.
func (lg *ledgerChecker) isReserve(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Reserve" {
		return "", false
	}
	if fn := methodOf(lg.pass.Info, sel); fn == nil {
		return "", false
	}
	t, ok := lg.pass.Info.TypeOf(call).(*types.Basic)
	if !ok || t.Kind() != types.Bool {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// findAcquires scans stmts for acquisition sites; cont is the chain of
// statement lists that execute after this one (innermost first).
func (lg *ledgerChecker) findAcquires(stmts []ast.Stmt, cont [][]ast.Stmt) {
	for i, s := range stmts {
		rest := append([][]ast.Stmt{stmts[i+1:]}, cont...)
		switch s := s.(type) {
		case *ast.BlockStmt:
			lg.findAcquires(s.List, rest)
			continue
		case *ast.IfStmt:
			lg.findAcquires(s.Body.List, rest)
			if s.Else != nil {
				lg.findAcquires([]ast.Stmt{s.Else}, rest)
			}
			lg.checkStmt(s.Init, rest)
			if lg.checkCond != nil {
				lg.checkCond(s.Cond, s, rest)
			}
			continue
		case *ast.ForStmt:
			lg.findAcquires(s.Body.List, rest)
			continue
		case *ast.RangeStmt:
			lg.findAcquires(s.Body.List, rest)
			continue
		case *ast.SwitchStmt:
			lg.findClauseAcquires(s.Body.List, rest)
			lg.checkStmt(s.Init, rest)
			continue
		case *ast.TypeSwitchStmt:
			lg.findClauseAcquires(s.Body.List, rest)
			continue
		case *ast.SelectStmt:
			lg.findClauseAcquires(s.Body.List, rest)
			continue
		case *ast.LabeledStmt:
			lg.findAcquires([]ast.Stmt{s.Stmt}, rest)
			continue
		}
		lg.checkStmt(s, rest)
	}
}

func (lg *ledgerChecker) findClauseAcquires(clauses []ast.Stmt, rest [][]ast.Stmt) {
	for _, c := range clauses {
		switch c := c.(type) {
		case *ast.CaseClause:
			lg.findAcquires(c.Body, rest)
		case *ast.CommClause:
			lg.findAcquires(c.Body, rest)
		}
	}
}

// checkStmtAcquires handles acquisition sites in a single flat
// statement; rest is the continuation after it.
func (lg *ledgerChecker) checkStmtAcquires(s ast.Stmt, rest [][]ast.Stmt) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if lg.isSpanAcquire(call) {
				lg.pass.Reportf(call.Pos(), "span discarded at creation; it can never be ended")
				return
			}
			if _, ok := lg.isReserve(call); ok {
				lg.pass.Reportf(call.Pos(), "Reserve result discarded; the reservation can never be released")
				return
			}
		}
	case *ast.ReturnStmt:
		return // acquiring in a return hands ownership to the caller
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		if lg.isSpanAcquire(call) {
			lg.checkSpanAssign(s, call, rest)
			return
		}
		if recv, ok := lg.isReserve(call); ok {
			lg.checkReserveAssign(s, call, recv, rest)
			return
		}
	case *ast.GoStmt, *ast.DeferStmt:
		return // ownership moves into the spawned/deferred call
	default:
		// Reserve buried in another statement shape (e.g. a condition):
		// require a reachable Release.
		lg.checkReserveIn(s, s, rest)
	}
}

func (lg *ledgerChecker) checkSpanAssign(s *ast.AssignStmt, call *ast.CallExpr, rest [][]ast.Stmt) {
	if len(s.Lhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		lg.pass.Reportf(call.Pos(), "span assigned to _; it can never be ended")
		return
	}
	obj := lg.pass.Info.Defs[id]
	if obj == nil {
		obj = lg.pass.Info.Uses[id] // plain `=` reassignment acquires too
	}
	if obj == nil {
		return
	}
	switch lg.ensure(rest, obj) {
	case oReleased:
	default:
		lg.pass.Reportf(call.Pos(), "span %s is not ended on every path (call %s.End(), defer it, or hand the span off)", id.Name, id.Name)
	}
}

func (lg *ledgerChecker) checkReserveAssign(s *ast.AssignStmt, call *ast.CallExpr, recv string, rest [][]ast.Stmt) {
	if len(s.Lhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		lg.pass.Reportf(call.Pos(), "Reserve result discarded; the reservation can never be released")
		return
	}
	obj := lg.pass.Info.Defs[id]
	if obj == nil {
		obj = lg.pass.Info.Uses[id]
	}
	if !lg.releaseReachable(rest, recv, obj) {
		lg.pass.Reportf(call.Pos(), "%s.Reserve has no reachable %s.Release (and the result is not returned to the caller)", recv, recv)
	}
}

// checkReserveIn finds Reserve calls inside node (a condition or other
// nested position) and requires a reachable Release in the enclosing
// statement or the continuation.
func (lg *ledgerChecker) checkReserveIn(node ast.Node, enclosing ast.Stmt, rest [][]ast.Stmt) {
	if node == nil {
		return
	}
	inspectNoFuncLit(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := lg.isReserve(call)
		if !ok {
			return true
		}
		conts := append([][]ast.Stmt{{enclosing}}, rest...)
		if !lg.releaseReachable(conts, recv, nil) {
			lg.pass.Reportf(call.Pos(), "%s.Reserve has no reachable %s.Release", recv, recv)
		}
		return false
	})
}

// releaseReachable reports whether any statement in the continuation —
// including defers, nested closures, and calls to previously defined
// local closures — calls Release on the same receiver, or returns the
// Reserve result to the caller (ownership transfer).
func (lg *ledgerChecker) releaseReachable(conts [][]ast.Stmt, recv string, resultVar types.Object) bool {
	found := false
	seen := map[*ast.FuncLit]bool{}
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "Release" && types.ExprString(sel.X) == recv {
						found = true
						return false
					}
				}
				if id, ok := n.Fun.(*ast.Ident); ok {
					if lit := lg.closureOf(id); lit != nil && !seen[lit] {
						seen[lit] = true
						scan(lit.Body)
					}
				}
			case *ast.ReturnStmt:
				if resultVar != nil && identUsedInExprs(lg.pass.Info, n.Results, resultVar) {
					found = true
					return false
				}
			}
			return true
		})
	}
	for _, stmts := range conts {
		for _, s := range stmts {
			scan(s)
			if found {
				return true
			}
		}
	}
	return false
}

// isBuiltinOrUnresolved reports whether id denotes a universe builtin
// (or nothing at all) — i.e. it is not shadowed by a local definition.
func isBuiltinOrUnresolved(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return info.Defs[id] == nil
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

func (lg *ledgerChecker) closureOf(id *ast.Ident) *ast.FuncLit {
	obj := lg.pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return lg.closures[obj]
}

func identUsedInExprs(info *types.Info, exprs []ast.Expr, obj types.Object) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// ---- span all-paths walk ----

type outcome int

const (
	oOpen     outcome = iota // obligation still pending at list end
	oReleased                // released (or ownership handed off) on all paths
	oLeaked                  // some path terminated while still holding
)

// ensure walks the continuation lists in order; the span obligation for
// obj must resolve before the function falls off the end.
func (lg *ledgerChecker) ensure(conts [][]ast.Stmt, obj types.Object) outcome {
	for _, stmts := range conts {
		switch lg.ensureList(stmts, obj) {
		case oReleased:
			return oReleased
		case oLeaked:
			return oLeaked
		}
	}
	return oOpen // fell off the function end still holding
}

func (lg *ledgerChecker) ensureList(stmts []ast.Stmt, obj types.Object) outcome {
	for _, s := range stmts {
		switch o := lg.ensureStmt(s, obj); o {
		case oReleased, oLeaked:
			return o
		}
	}
	return oOpen
}

func (lg *ledgerChecker) ensureStmt(s ast.Stmt, obj types.Object) outcome {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if identUsedInExprs(lg.pass.Info, s.Results, obj) {
			return oReleased // span returned: ownership moves to the caller
		}
		if lg.flatEffect(s, obj) == effRelease {
			return oReleased
		}
		return oLeaked
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && lg.pass.Info.Uses[id] == obj {
				lg.pass.Reportf(s.Pos(), "%s %s reassigned before %s; the original %s is orphaned",
					lg.noun, id.Name, lg.releaseMethod, lg.noun)
				return oLeaked
			}
		}
		if lg.flatEffect(s, obj) != effNone {
			return oReleased
		}
		return oOpen
	case *ast.IfStmt:
		if s.Init != nil {
			if o := lg.ensureStmt(s.Init, obj); o != oOpen {
				return o
			}
		}
		if lg.flatEffect(s.Cond, obj) != effNone {
			return oReleased
		}
		thenO := lg.ensureList(s.Body.List, obj)
		elseO := oOpen
		if s.Else != nil {
			elseO = lg.ensureStmt(s.Else, obj)
		}
		if thenO == oLeaked || elseO == oLeaked {
			return oLeaked
		}
		if thenO == oReleased && elseO == oReleased {
			return oReleased
		}
		return oOpen
	case *ast.BlockStmt:
		return lg.ensureList(s.List, obj)
	case *ast.LabeledStmt:
		return lg.ensureStmt(s.Stmt, obj)
	case *ast.SwitchStmt:
		return lg.ensureClauses(s.Body.List, obj, hasDefaultClause(s.Body.List))
	case *ast.TypeSwitchStmt:
		return lg.ensureClauses(s.Body.List, obj, hasDefaultClause(s.Body.List))
	case *ast.SelectStmt:
		// A select always runs exactly one of its cases.
		return lg.ensureClauses(s.Body.List, obj, true)
	case *ast.ForStmt:
		if lg.ensureList(s.Body.List, obj) == oLeaked {
			return oLeaked
		}
		return oOpen // body may run zero times
	case *ast.RangeStmt:
		if lg.ensureList(s.Body.List, obj) == oLeaked {
			return oLeaked
		}
		return oOpen
	case *ast.BranchStmt:
		return oOpen // break/continue/goto: lose the thread, stay silent
	case *ast.ExprStmt:
		switch lg.flatEffect(s, obj) {
		case effRelease:
			return oReleased
		case effPanic:
			return oLeaked
		}
		return oOpen
	default:
		if lg.flatEffect(s, obj) == effRelease {
			return oReleased
		}
		return oOpen
	}
}

// ensureClauses: every clause must release for the compound statement
// to count as released; any leak is a leak; a missing default leaves
// the obligation open even if all present clauses release.
func (lg *ledgerChecker) ensureClauses(clauses []ast.Stmt, obj types.Object, exhaustive bool) outcome {
	allReleased := len(clauses) > 0
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		switch lg.ensureList(body, obj) {
		case oLeaked:
			return oLeaked
		case oOpen:
			allReleased = false
		}
	}
	if allReleased && exhaustive {
		return oReleased
	}
	return oOpen
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

type effect int

const (
	effNone effect = iota
	effRelease
	effPanic
)

// flatEffect classifies a statement's (or expression's) impact on the
// obligation for obj:
//
//   - a releaseMethod call (End for spans, Release for pooled frames) on
//     the held variable — directly, in a deferred closure, or in the
//     body of a previously defined local closure that is called or
//     deferred here — releases it;
//   - any use of the held variable other than as a method receiver —
//     argument, operand, capture by a function literal — releases it by
//     ownership hand-off;
//   - a panic(...) with neither of the above leaks it.
func (lg *ledgerChecker) flatEffect(n ast.Node, obj types.Object) effect {
	released := false
	panicked := false
	seen := map[*ast.FuncLit]bool{}

	// First pass: note every ident that appears as the X of a selector
	// (receiver position) so bare uses can be told apart.
	recvPos := map[*ast.Ident]bool{}
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if sel, ok := m.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					recvPos[id] = true
				}
			}
			return true
		})
		ast.Inspect(n, func(m ast.Node) bool {
			if released {
				return false
			}
			switch m := m.(type) {
			case *ast.CallExpr:
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == lg.releaseMethod {
					if id, ok := sel.X.(*ast.Ident); ok && lg.pass.Info.Uses[id] == obj {
						released = true
						return false
					}
				}
				if id, ok := m.Fun.(*ast.Ident); ok {
					if id.Name == "panic" && isBuiltinOrUnresolved(lg.pass.Info, id) {
						panicked = true
					}
					if lit := lg.closureOf(id); lit != nil && !seen[lit] {
						seen[lit] = true
						scan(lit.Body)
					}
				}
			case *ast.FuncLit:
				// A closure capturing the span extends its lifetime beyond
				// this analysis: ownership hand-off.
				if !seen[m] && identUsed(lg.pass.Info, m.Body, obj) {
					released = true
					return false
				}
			case *ast.Ident:
				if lg.pass.Info.Uses[m] == obj && !recvPos[m] {
					released = true // bare use: argument/operand/store — hand-off
					return false
				}
			}
			return true
		})
	}
	scan(n)
	switch {
	case released:
		return effRelease
	case panicked:
		return effPanic
	}
	return effNone
}
