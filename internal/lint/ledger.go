package lint

import (
	"go/ast"
	"go/types"
)

// Ledger enforces the acquire/release pairings the cache ledger and the
// tracer depend on:
//
//   - A span minted by StartSpan/Child/ChildThread (any method of those
//     names returning a type named Span) must be ended on every path:
//     an explicit End() on all branches, a defer (including a deferred
//     closure), or handing the span off (returning it, passing it to a
//     call, storing it, or capturing it in a closure — ownership moves
//     with it). Reassigning the span variable before it is ended
//     orphans the first span and is always a finding, as is dropping
//     the result of an acquire on the floor.
//   - A Reserve(...) bool acquisition (the Arbiter/BudgetClient ledger
//     protocol) must not discard its result, and when the result is
//     kept, a matching Release on the same receiver must be reachable
//     afterwards (directly, deferred, or via a previously defined local
//     closure), unless the bool is returned to the caller — that is the
//     admit() ownership-transfer idiom.
//
// The all-paths analysis runs over the shared control-flow graph
// (cfg.go): from the point after an acquisition, every path to the
// function's exit must resolve the obligation. A path that returns or
// panics while holding is a leak; a loop's zero-iteration edge keeps a
// release inside the body from discharging the paths around it; labeled
// break, goto, and fallthrough follow their real targets. Any
// non-receiver use of the held variable counts as an ownership
// hand-off; the escape hatch for protocols beyond the analysis is
// //v2v:nolint(ledger) with a reason.
var Ledger = &Analyzer{
	Name: "ledger",
	Doc:  "Reserve/StartSpan-style acquisitions are released (Release/End) on all paths or ownership is handed off",
	Run:  runLedger,
}

func runLedger(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, body *ast.BlockStmt) {
			lg := &ledgerChecker{
				pass:          pass,
				closures:      collectClosures(pass, body),
				cfg:           buildCFG(body, pass.Info),
				releaseMethod: "End",
				noun:          "span",
			}
			lg.checkStmt = lg.checkStmtAcquires
			lg.checkCond = func(cond ast.Expr, after cfgPoint) { lg.checkReserveIn(cond, after) }
			lg.findAcquires()
		})
	}
	return nil
}

// collectClosures maps local variables assigned a function literal
// (`fail := func(...) {...}`) to their bodies, so a call to fail()
// counts as whatever fail's body does. One level only.
func collectClosures(pass *Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			out[obj] = lit
		} else if obj := pass.Info.Uses[id]; obj != nil {
			out[obj] = lit
		}
		return true
	})
	return out
}

// ledgerChecker is the reusable obligation analysis: findAcquires scans
// the function's CFG for acquisition sites, ensure runs the all-paths
// release analysis from the point after one, and flatEffect classifies
// a node's effect on a held obligation. The protocol being checked is
// parameterized so other analyzers (poolcheck) can reuse the machinery
// with their own acquire matcher and release-method name.
type ledgerChecker struct {
	pass     *Pass
	closures map[types.Object]*ast.FuncLit
	cfg      *funcCFG

	// checkStmt is the acquire matcher statement nodes dispatch to;
	// checkCond (optional) handles acquisitions buried in control
	// conditions (if/for conditions, switch tags, range operands).
	checkStmt func(s ast.Stmt, after cfgPoint)
	checkCond func(cond ast.Expr, after cfgPoint)
	// releaseMethod discharges an obligation ("End" for spans, "Release"
	// for pooled frames); noun names the held resource in diagnostics.
	releaseMethod string
	noun          string
}

// findAcquires dispatches every CFG node to the acquire matchers,
// paired with the point just after it (the continuation the obligation
// is checked against).
func (lg *ledgerChecker) findAcquires() {
	lg.cfg.eachNode(func(n cfgNode, after cfgPoint) {
		if n.stmt != nil {
			lg.checkStmt(n.stmt, after)
		} else if lg.checkCond != nil {
			lg.checkCond(n.cond, after)
		}
	})
}

// isSpanAcquire reports whether call mints a span: a method named
// StartSpan/Child/ChildThread whose result is a type named Span.
func (lg *ledgerChecker) isSpanAcquire(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "StartSpan", "Child", "ChildThread":
	default:
		return false
	}
	obj := namedObjOf(lg.pass.Info.TypeOf(call))
	return obj != nil && obj.Name() == "Span"
}

// isReserve reports whether call is a Reserve method returning a single
// bool, and returns the receiver expression text.
func (lg *ledgerChecker) isReserve(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Reserve" {
		return "", false
	}
	if fn := methodOf(lg.pass.Info, sel); fn == nil {
		return "", false
	}
	t, ok := lg.pass.Info.TypeOf(call).(*types.Basic)
	if !ok || t.Kind() != types.Bool {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// checkStmtAcquires handles acquisition sites in a single flat
// statement; after is the program point following it.
func (lg *ledgerChecker) checkStmtAcquires(s ast.Stmt, after cfgPoint) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if lg.isSpanAcquire(call) {
				lg.pass.Reportf(call.Pos(), "span discarded at creation; it can never be ended")
				return
			}
			if _, ok := lg.isReserve(call); ok {
				lg.pass.Reportf(call.Pos(), "Reserve result discarded; the reservation can never be released")
				return
			}
		}
	case *ast.ReturnStmt:
		return // acquiring in a return hands ownership to the caller
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		if lg.isSpanAcquire(call) {
			lg.checkSpanAssign(s, call, after)
			return
		}
		if recv, ok := lg.isReserve(call); ok {
			lg.checkReserveAssign(s, call, recv, after)
			return
		}
	case *ast.GoStmt, *ast.DeferStmt:
		return // ownership moves into the spawned/deferred call
	default:
		// Reserve buried in another statement shape (e.g. a send or a
		// declaration): require a reachable Release.
		lg.checkReserveIn(s, after)
	}
}

func (lg *ledgerChecker) checkSpanAssign(s *ast.AssignStmt, call *ast.CallExpr, after cfgPoint) {
	if len(s.Lhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		lg.pass.Reportf(call.Pos(), "span assigned to _; it can never be ended")
		return
	}
	obj := lg.pass.Info.Defs[id]
	if obj == nil {
		obj = lg.pass.Info.Uses[id] // plain `=` reassignment acquires too
	}
	if obj == nil {
		return
	}
	switch lg.ensure(after, obj) {
	case oReleased:
	default:
		lg.pass.Reportf(call.Pos(), "span %s is not ended on every path (call %s.End(), defer it, or hand the span off)", id.Name, id.Name)
	}
}

func (lg *ledgerChecker) checkReserveAssign(s *ast.AssignStmt, call *ast.CallExpr, recv string, after cfgPoint) {
	if len(s.Lhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		lg.pass.Reportf(call.Pos(), "Reserve result discarded; the reservation can never be released")
		return
	}
	obj := lg.pass.Info.Defs[id]
	if obj == nil {
		obj = lg.pass.Info.Uses[id]
	}
	if !lg.releaseReachable(nil, after, recv, obj) {
		lg.pass.Reportf(call.Pos(), "%s.Reserve has no reachable %s.Release (and the result is not returned to the caller)", recv, recv)
	}
}

// checkReserveIn finds Reserve calls inside node (a control condition
// or another nested position) and requires a Release reachable from the
// following program point — or within the node itself (e.g. the body of
// an if whose condition reserves is covered by after's successors; a
// Release textually inside the same statement counts too).
func (lg *ledgerChecker) checkReserveIn(node ast.Node, after cfgPoint) {
	if node == nil {
		return
	}
	inspectNoFuncLit(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := lg.isReserve(call)
		if !ok {
			return true
		}
		if !lg.releaseReachable([]ast.Node{node}, after, recv, nil) {
			lg.pass.Reportf(call.Pos(), "%s.Reserve has no reachable %s.Release", recv, recv)
		}
		return false
	})
}

// releaseReachable reports whether any node in extra, or any CFG node
// reachable from p — including defers, nested closures, and calls to
// previously defined local closures — calls Release on the same
// receiver, or returns the Reserve result to the caller (ownership
// transfer).
func (lg *ledgerChecker) releaseReachable(extra []ast.Node, p cfgPoint, recv string, resultVar types.Object) bool {
	found := false
	seen := map[*ast.FuncLit]bool{}
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "Release" && types.ExprString(sel.X) == recv {
						found = true
						return false
					}
				}
				if id, ok := n.Fun.(*ast.Ident); ok {
					if lit := lg.closureOf(id); lit != nil && !seen[lit] {
						seen[lit] = true
						scan(lit.Body)
					}
				}
			case *ast.ReturnStmt:
				if resultVar != nil && identUsedInExprs(lg.pass.Info, n.Results, resultVar) {
					found = true
					return false
				}
			}
			return true
		})
	}
	for _, n := range extra {
		scan(n)
		if found {
			return true
		}
	}
	for _, cn := range lg.cfg.reachableNodes(p) {
		if cn.stmt != nil {
			scan(cn.stmt)
		} else {
			scan(cn.cond)
		}
		if found {
			return true
		}
	}
	return false
}

// isBuiltinOrUnresolved reports whether id denotes a universe builtin
// (or nothing at all) — i.e. it is not shadowed by a local definition.
func isBuiltinOrUnresolved(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return info.Defs[id] == nil
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

func (lg *ledgerChecker) closureOf(id *ast.Ident) *ast.FuncLit {
	obj := lg.pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return lg.closures[obj]
}

func identUsedInExprs(info *types.Info, exprs []ast.Expr, obj types.Object) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// ---- all-paths obligation walk over the CFG ----

type outcome int

const (
	oOpen     outcome = iota // obligation still pending at the path's end
	oReleased                // released (or ownership handed off) on all paths
	oLeaked                  // some path terminated while still holding
	oCycle                   // internal: every way forward loops back into the walk
)

// ensure runs the all-paths analysis for obj from program point p:
// every path from p must resolve the obligation before the function
// ends. Blocks are memoized (each is visited at most once per call, so
// a reassignment diagnostic fires once). A back edge into a block
// already on the walk contributes no vote of its own — the looped
// path's fate is whatever the loop's exit edges decide, which keeps the
// analysis loop-transparent like the old continuation walk (a release
// inside the body still does not discharge the zero-iteration path,
// because the head's exit edge is checked separately) — and a region
// with no way forward except looping counts as open: holding inside
// `for {}` is a leak.
func (lg *ledgerChecker) ensure(p cfgPoint, obj types.Object) outcome {
	e := &ensurer{lg: lg, obj: obj, memo: map[*cfgBlock]outcome{}, busy: map[*cfgBlock]bool{}}
	return e.from(p)
}

type ensurer struct {
	lg   *ledgerChecker
	obj  types.Object
	memo map[*cfgBlock]outcome
	busy map[*cfgBlock]bool
}

func (e *ensurer) from(p cfgPoint) outcome {
	for i := p.i; i < len(p.b.nodes); i++ {
		switch o := e.lg.nodeOutcome(p.b.nodes[i], e.obj); o {
		case oReleased, oLeaked:
			return o
		}
	}
	if len(p.b.succs) == 0 {
		return oOpen // exit (or a panic edge): fell off the end still holding
	}
	// Every successor is evaluated (not short-circuited) so diagnostics
	// inside sibling branches — a reassignment in an else arm — fire
	// deterministically regardless of edge order.
	all, leaked, voted := true, false, false
	for _, s := range p.b.succs {
		switch e.block(s) {
		case oLeaked:
			leaked = true
			voted = true
		case oOpen:
			all = false
			voted = true
		case oReleased:
			voted = true
		case oCycle:
			// Back edge: no vote — this path rejoins the walk and exits
			// wherever the loop does.
		}
	}
	switch {
	case leaked:
		return oLeaked
	case !voted:
		return oCycle // nothing ahead but the loop itself
	case all:
		return oReleased
	}
	return oOpen
}

func (e *ensurer) block(b *cfgBlock) outcome {
	if o, ok := e.memo[b]; ok {
		return o
	}
	if e.busy[b] {
		return oCycle
	}
	e.busy[b] = true
	o := e.from(cfgPoint{b, 0})
	e.busy[b] = false
	if o != oCycle {
		// oCycle is relative to which blocks were on the walk when it was
		// computed; caching it would poison unrelated queries.
		e.memo[b] = o
	}
	return o
}

// nodeOutcome classifies one CFG node's impact on the obligation for
// obj: oReleased ends the path satisfied, oLeaked ends it leaking, and
// oOpen continues the walk.
func (lg *ledgerChecker) nodeOutcome(n cfgNode, obj types.Object) outcome {
	if n.cond != nil {
		// A release or hand-off buried in a control condition resolves
		// the obligation before any branch is taken.
		if lg.flatEffect(n.cond, obj) != effNone {
			return oReleased
		}
		return oOpen
	}
	switch s := n.stmt.(type) {
	case *ast.ReturnStmt:
		if identUsedInExprs(lg.pass.Info, s.Results, obj) {
			return oReleased // span returned: ownership moves to the caller
		}
		if lg.flatEffect(s, obj) == effRelease {
			return oReleased
		}
		return oLeaked
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && lg.pass.Info.Uses[id] == obj {
				lg.pass.Reportf(s.Pos(), "%s %s reassigned before %s; the original %s is orphaned",
					lg.noun, id.Name, lg.releaseMethod, lg.noun)
				return oLeaked
			}
		}
		if lg.flatEffect(s, obj) != effNone {
			return oReleased
		}
		return oOpen
	case *ast.ExprStmt:
		switch lg.flatEffect(s, obj) {
		case effRelease:
			return oReleased
		case effPanic:
			return oLeaked
		}
		return oOpen
	default:
		if lg.flatEffect(s, obj) == effRelease {
			return oReleased
		}
		return oOpen
	}
}

type effect int

const (
	effNone effect = iota
	effRelease
	effPanic
)

// flatEffect classifies a statement's (or expression's) impact on the
// obligation for obj:
//
//   - a releaseMethod call (End for spans, Release for pooled frames) on
//     the held variable — directly, in a deferred closure, or in the
//     body of a previously defined local closure that is called or
//     deferred here — releases it;
//   - any use of the held variable other than as a method receiver —
//     argument, operand, capture by a function literal — releases it by
//     ownership hand-off;
//   - a panic(...) with neither of the above leaks it.
func (lg *ledgerChecker) flatEffect(n ast.Node, obj types.Object) effect {
	released := false
	panicked := false
	seen := map[*ast.FuncLit]bool{}

	// First pass: note every ident that appears as the X of a selector
	// (receiver position) so bare uses can be told apart.
	recvPos := map[*ast.Ident]bool{}
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if sel, ok := m.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					recvPos[id] = true
				}
			}
			return true
		})
		ast.Inspect(n, func(m ast.Node) bool {
			if released {
				return false
			}
			switch m := m.(type) {
			case *ast.CallExpr:
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == lg.releaseMethod {
					if id, ok := sel.X.(*ast.Ident); ok && lg.pass.Info.Uses[id] == obj {
						released = true
						return false
					}
				}
				if id, ok := m.Fun.(*ast.Ident); ok {
					if id.Name == "panic" && isBuiltinOrUnresolved(lg.pass.Info, id) {
						panicked = true
					}
					if lit := lg.closureOf(id); lit != nil && !seen[lit] {
						seen[lit] = true
						scan(lit.Body)
					}
				}
			case *ast.FuncLit:
				// A closure capturing the span extends its lifetime beyond
				// this analysis: ownership hand-off.
				if !seen[m] && identUsed(lg.pass.Info, m.Body, obj) {
					released = true
					return false
				}
			case *ast.Ident:
				if lg.pass.Info.Uses[m] == obj && !recvPos[m] {
					released = true // bare use: argument/operand/store — hand-off
					return false
				}
			}
			return true
		})
	}
	scan(n)
	switch {
	case released:
		return effRelease
	case panicked:
		return effPanic
	}
	return effNone
}
