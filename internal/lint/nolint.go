package lint

import (
	"go/token"
	"regexp"
	"strings"
)

// The suppression mechanism: a comment of the form
//
//	//v2v:nolint(analyzer1,analyzer2) written justification
//
// silences those analyzers' findings on the directive's line — or, when
// the directive stands alone on its line, on the next line. The reason
// is mandatory: a directive without one does not suppress anything and
// is itself reported, so every silenced finding carries an auditable
// justification in the source.

var nolintRe = regexp.MustCompile(`^//\s*v2v:nolint\b(\(([^)]*)\))?(.*)$`)

// suppressions maps file -> line -> analyzer names silenced there.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppresses(d Diagnostic) bool {
	byLine, ok := s[d.Pos.Filename]
	if !ok {
		return false
	}
	return byLine[d.Pos.Line][d.Analyzer]
}

// parseNolint scans a package's comments for nolint directives. It
// returns the valid suppressions and a diagnostic (analyzer "nolint")
// for each malformed directive: missing analyzer list, unknown analyzer
// name, or missing reason.
func parseNolint(pkg *Package, known map[string]bool) (suppressions, []Diagnostic) {
	sups := suppressions{}
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "nolint",
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := nolintRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if m[1] == "" || strings.TrimSpace(m[2]) == "" {
					report(c.Pos(), "v2v:nolint must name the analyzers it silences: //v2v:nolint(analyzer) reason")
					continue
				}
				reason := strings.TrimSpace(m[3])
				if reason == "" {
					report(c.Pos(), "v2v:nolint requires a written reason after the analyzer list")
					continue
				}
				var names []string
				bad := false
				for _, name := range strings.Split(m[2], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if !known[name] {
						report(c.Pos(), "v2v:nolint names unknown analyzer "+strconvQuote(name))
						bad = true
						break
					}
					names = append(names, name)
				}
				if bad || len(names) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if directiveAlone(pkg, pos) {
					line++ // a standalone directive covers the next line
				}
				byLine := sups[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sups[pos.Filename] = byLine
				}
				set := byLine[line]
				if set == nil {
					set = map[string]bool{}
					byLine[line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return sups, diags
}

// lineNolintRe is the raw-text form of nolintRe for drivers that scan
// source lines rather than parsed comments. The reason is still
// mandatory: a directive without one suppresses nothing.
var lineNolintRe = regexp.MustCompile(`//\s*v2v:nolint\(([^)]*)\)\s*(\S.*)$`)

// NolintLines scans raw source for //v2v:nolint directives naming
// analyzer and returns the 1-based set of suppressed lines — the
// directive's own line, or the next line when the directive stands
// alone. It serves drivers that attribute findings from compiler output
// instead of a type-checked load (v2vlint -escapes); the grammar
// matches parseNolint, with malformed directives simply ignored here
// (the type-checked path reports them).
func NolintLines(src []byte, analyzer string) map[int]bool {
	out := map[int]bool{}
	for i, text := range strings.Split(string(src), "\n") {
		loc := lineNolintRe.FindStringSubmatchIndex(text)
		if loc == nil {
			continue
		}
		names := text[loc[2]:loc[3]]
		found := false
		for _, name := range strings.Split(names, ",") {
			if strings.TrimSpace(name) == analyzer {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		line := i + 1
		if strings.TrimSpace(text[:loc[0]]) == "" {
			line++ // standalone directive covers the next line
		}
		out[line] = true
	}
	return out
}

// directiveAlone reports whether only whitespace precedes the comment on
// its line, i.e. the directive is not trailing a statement.
func directiveAlone(pkg *Package, pos token.Position) bool {
	src, ok := pkg.Sources[pos.Filename]
	if !ok {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

func strconvQuote(s string) string { return `"` + s + `"` }
