// Package lint is V2V's from-scratch static analysis framework: a
// stdlib-only (go/parser + go/ast + go/types, no x/tools) harness that
// loads and type-checks the module's packages and runs project-specific
// analyzers over them, enforcing the invariants PRs 2-4 left implicit —
// contexts consulted not dropped, cache-ledger reservations released on
// every path, no locks held across channel operations, metric naming
// discipline, and error wrapping across package boundaries.
//
// The pieces:
//
//   - Loader (load.go) parses and type-checks packages. Module-internal
//     imports resolve against the module source tree; standard library
//     imports go through the stdlib source importer, so no compiled
//     export data or external tooling is needed.
//   - Analyzer is the unit of checking: a name, a doc string, and a Run
//     function over one type-checked package that reports positioned
//     diagnostics.
//   - Run applies a set of analyzers to a package and filters the
//     diagnostics through //v2v:nolint suppressions (nolint.go). A
//     suppression must name the analyzers it silences and carry a
//     written reason; a bare suppression is itself a diagnostic.
//
// cmd/v2vlint is the CLI driver; docs/STATIC_ANALYSIS.md describes each
// analyzer, the invariant it guards, and how to add a new one.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and nolint directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects the package via pass and reports findings with
	// pass.Reportf. Returning an error aborts the whole lint run (use it
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer this module ships, in stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxCheck, Ledger, LockCheck, MetricsName, ErrWrap, PoolCheck, GoLeak, SendBlock, HotPath}
}

// Run applies analyzers to each package, filters the findings through
// the packages' //v2v:nolint directives, and returns the surviving
// diagnostics sorted by position. Malformed or bare (reason-less)
// nolint directives are reported as "nolint" diagnostics, which cannot
// themselves be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Every shipped analyzer is a valid nolint target even when only a
	// subset runs, so a partial run never misreports directives aimed at
	// the others; analyzers passed in (e.g. test-local ones) count too.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		sups, nolintDiags := parseNolint(pkg, known)
		out = append(out, nolintDiags...)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		for _, d := range diags {
			if !sups.suppresses(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
