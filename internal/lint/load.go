package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	// Sources holds the raw bytes of each parsed file, keyed by path —
	// the nolint scanner needs them to tell directive-only lines from
	// trailing comments.
	Sources map[string][]byte
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages of one module. Imports inside
// the module resolve against its source tree; everything else (the
// standard library) goes through go/importer's source importer, so the
// loader needs no compiled export data, no GOPATH layout, and no
// external tooling — it matches the repo's stdlib-only rule.
type Loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer

	typed   map[string]*types.Package // import path -> type-checked package
	pkgs    map[string]*Package       // import path -> full lint package
	loading map[string]bool           // cycle guard
}

// NewLoader returns a loader for the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePathOf(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The stdlib source importer type-checks GOROOT packages from source
	// through go/build; with cgo enabled it would shell out to the cgo
	// tool for packages like net. Forcing the pure-Go build context keeps
	// the loader hermetic.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleDir:  root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		typed:      map[string]*types.Package{},
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleDir returns the root directory of the loaded module.
func (l *Loader) ModuleDir() string { return l.moduleDir }

func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Load resolves patterns to packages and type-checks them. Supported
// patterns: "./..." (every package under the module), a directory path
// (absolute or relative), or a directory path ending in "/..." (that
// subtree). Directories named "testdata", hidden directories, and
// directories without non-test .go files are skipped by tree patterns.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root := l.moduleDir
		switch {
		case pat == "./..." || pat == "...":
			// whole module
		case strings.HasSuffix(pat, "/..."):
			root = filepath.Join(l.moduleDir, strings.TrimSuffix(pat, "/..."))
			if filepath.IsAbs(pat) {
				root = strings.TrimSuffix(pat, "/...")
			}
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(l.moduleDir, d)
			}
			if hasGoFiles(d) {
				add(d)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", d)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, e os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !e.IsDir() {
				return nil
			}
			name := e.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory to its import path within the module;
// directories outside the module import path space (testdata fixtures)
// get a synthetic path derived from the directory.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return dir
	}
	if rel == "." {
		return l.modulePath
	}
	if strings.Contains(rel, "testdata"+string(filepath.Separator)) || strings.HasPrefix(rel, "testdata") {
		return filepath.ToSlash(rel)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the single package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.importPathFor(abs), abs)
}

// Import implements types.Importer: module-internal paths load from the
// module tree, anything else delegates to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.moduleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	sources := map[string][]byte{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f, err := parser.ParseFile(l.fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, f)
		sources[path] = src
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, typeErrs[0])
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Sources:    sources,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}
