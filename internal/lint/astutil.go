package lint

import (
	"go/ast"
	"go/types"
)

// errIface is the universe error interface, shared by analyzers.
var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) satisfies the error
// interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// inspectNoFuncLit walks n calling fn on every node, but does not
// descend into function literals: a nested closure runs in its own
// dynamic context (another goroutine, a later defer) and is analyzed as
// its own function body.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// funcBodies yields every function body in the file — declared
// functions and every function literal — each exactly once, paired with
// a printable name. Analyzers that reason about paths through "one
// function" iterate these.
func funcBodies(f *ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Body)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			visit("func literal", lit.Body)
		}
		return true
	})
}

// methodOf resolves the called method object for a selector call like
// x.M(...), working through embedded fields; returns nil when the
// selector is not a method selection (e.g. a package-qualified call).
func methodOf(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	if s, ok := info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// calleeIsPkgFunc reports whether call invokes the named function from
// the named package (e.g. "time", "Sleep").
func calleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedObjOf returns the type name object of t after stripping pointers
// and aliases, or nil for unnamed types.
func namedObjOf(t types.Type) *types.TypeName {
	t = deref(t)
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
