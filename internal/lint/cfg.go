package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared control-flow-graph layer the path-sensitive
// analyzers (ledger, poolcheck, goleak) are built on. buildCFG lowers
// one function body to basic blocks of *flat* nodes — straight-line
// statements and control conditions — connected by successor edges that
// model the things a syntactic walk gets wrong: labeled break and
// continue, goto, fallthrough, the zero-iteration path around loops,
// the missing-default path around switches, and panic/return
// termination.
//
// Design decisions, chosen to match (and where noted, improve on) the
// bespoke continuation-passing walks this layer replaced:
//
//   - Function literals are opaque expressions. A closure body runs in
//     its own dynamic context (another goroutine, a later defer), so it
//     gets its own CFG via funcBodies; the enclosing graph sees only
//     the literal itself inside a node.
//   - defer is a flat node at its syntactic position. The obligation
//     analyses treat a deferred release as discharging every subsequent
//     path, which is exactly defer's semantics, so no exit-edge
//     machinery is needed.
//   - A select has no fall-through edge: it always executes one of its
//     clauses (default is just another clause). An expression switch
//     without a default keeps an edge straight to the code after it.
//   - An ExprStmt that is a direct call to the panic builtin terminates
//     its block with no successors: nothing after it on that path is
//     reachable.
//   - Statements after a terminator (return, panic, break, goto) start
//     a fresh unreachable block. They are still scanned for
//     acquisition sites — dead code should stay lint-clean — but they
//     contribute nothing to reachability from live code.
type cfgNode struct {
	// Exactly one of stmt/cond is set: a flat statement, or a control
	// condition (if/for condition, switch tag, range operand, case-list
	// expression) evaluated at this point.
	stmt ast.Stmt
	cond ast.Expr
}

// pos returns the node's source position (for diagnostics).
func (n cfgNode) pos() token.Pos {
	if n.stmt != nil {
		return n.stmt.Pos()
	}
	return n.cond.Pos()
}

// cfgBlock is one basic block: flat nodes executed in order, then a
// transfer to one of succs. A block with no successors terminates the
// function (the exit block, or a panic).
type cfgBlock struct {
	nodes []cfgNode
	succs []*cfgBlock
	// done marks the block as ended by an explicit transfer (return,
	// panic, break, continue, goto, fallthrough); no fall-through edge
	// may be appended after it.
	done bool
}

func (b *cfgBlock) jump(to *cfgBlock) {
	if b.done {
		return
	}
	for _, s := range b.succs {
		if s == to {
			return
		}
	}
	b.succs = append(b.succs, to)
}

// funcCFG is the graph for one function body. blocks holds every block
// in construction order (source order for the nodes they contain),
// entry first; exit is the synthetic all-returns-join with no nodes and
// no successors.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// cfgPoint addresses the program point just before node i of block b
// (i == len(b.nodes) means the block's end, before the transfer).
type cfgPoint struct {
	b *cfgBlock
	i int
}

// eachNode visits every node of every block in source order, paired
// with the point immediately after it — the continuation an analyzer
// checks an acquisition against.
func (g *funcCFG) eachNode(visit func(n cfgNode, after cfgPoint)) {
	for _, b := range g.blocks {
		for i, n := range b.nodes {
			visit(n, cfgPoint{b, i + 1})
		}
	}
}

// reachableNodes collects every node reachable from p (including the
// remainder of p's own block), in deterministic order. Panic-terminated
// and exit blocks contribute their nodes but no successors.
func (g *funcCFG) reachableNodes(p cfgPoint) []cfgNode {
	var out []cfgNode
	seen := map[*cfgBlock]bool{}
	var walk func(b *cfgBlock, start int)
	walk = func(b *cfgBlock, start int) {
		out = append(out, b.nodes[start:]...)
		for _, s := range b.succs {
			if !seen[s] {
				seen[s] = true
				walk(s, 0)
			}
		}
	}
	// The starting block is marked visited only for re-entry through a
	// back edge; its tail from p.i is emitted directly.
	seen[p.b] = true
	walk(p.b, p.i)
	return out
}

// ---- builder ----

type cfgTarget struct {
	label string
	block *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	g    *funcCFG
	cur  *cfgBlock
	info *types.Info

	breaks    []cfgTarget
	continues []cfgTarget
	fallts    []*cfgBlock // fallthrough targets, innermost last
	labels    map[string]*cfgBlock
	gotos     []pendingGoto
	// pendingLabel is the label naming the next loop/switch/select, so
	// labeled break/continue resolve to the right construct.
	pendingLabel string
}

// buildCFG lowers body to a control-flow graph. info is consulted only
// to recognize the panic builtin (a shadowed local panic is not a
// terminator).
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	g := &funcCFG{exit: &cfgBlock{}}
	c := &cfgBuilder{g: g, info: info, labels: map[string]*cfgBlock{}}
	c.cur = c.newBlock()
	g.entry = c.cur
	c.stmtList(body.List)
	c.cur.jump(g.exit)
	// Gotos may jump forward to labels that did not exist yet while the
	// branch was lowered; resolve them now. The goto itself is the
	// block's transfer, so the edge bypasses jump()'s done guard.
	for _, pg := range c.gotos {
		if to := c.labels[pg.label]; to != nil {
			pg.from.succs = append(pg.from.succs, to)
		}
	}
	return g
}

func (c *cfgBuilder) newBlock() *cfgBlock {
	b := &cfgBlock{}
	c.g.blocks = append(c.g.blocks, b)
	return b
}

// startBlock begins a new block reached by fall-through from cur.
func (c *cfgBuilder) startBlock() *cfgBlock {
	b := c.newBlock()
	c.cur.jump(b)
	c.cur = b
	return b
}

func (c *cfgBuilder) emit(n cfgNode) {
	c.cur.nodes = append(c.cur.nodes, n)
}

// terminate seals the current block (after an explicit transfer) and
// starts a fresh, unreachable block for any dead statements behind it.
func (c *cfgBuilder) terminate() {
	c.cur.done = true
	c.cur = c.newBlock()
}

// takeLabel consumes the pending label for a breakable construct.
func (c *cfgBuilder) takeLabel() string {
	l := c.pendingLabel
	c.pendingLabel = ""
	return l
}

func findTarget(stack []cfgTarget, label string) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (c *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		c.stmtList(s.List)
	case *ast.LabeledStmt:
		// The labeled statement starts its own block so gotos have a
		// landing point; the label also names the construct for
		// labeled break/continue.
		lb := c.startBlock()
		c.labels[s.Label.Name] = lb
		c.pendingLabel = s.Label.Name
		c.stmt(s.Stmt)
		c.pendingLabel = ""
	case *ast.IfStmt:
		c.takeLabel() // if is not breakable; drop any label
		if s.Init != nil {
			c.emit(cfgNode{stmt: s.Init})
		}
		c.emit(cfgNode{cond: s.Cond})
		condBlk := c.cur
		after := c.newBlock()
		thenB := c.newBlock()
		condBlk.jump(thenB)
		c.cur = thenB
		c.stmtList(s.Body.List)
		c.cur.jump(after)
		if s.Else != nil {
			elseB := c.newBlock()
			condBlk.jump(elseB)
			c.cur = elseB
			c.stmt(s.Else)
			c.cur.jump(after)
		} else {
			condBlk.jump(after)
		}
		c.cur = after
	case *ast.ForStmt:
		label := c.takeLabel()
		if s.Init != nil {
			c.emit(cfgNode{stmt: s.Init})
		}
		head := c.startBlock()
		if s.Cond != nil {
			c.emit(cfgNode{cond: s.Cond})
		}
		after := c.newBlock()
		if s.Cond != nil {
			head.jump(after) // condition false: the body may run zero times
		}
		contTo := head
		if s.Post != nil {
			post := c.newBlock()
			post.nodes = append(post.nodes, cfgNode{stmt: s.Post})
			post.jump(head)
			contTo = post
		}
		c.breaks = append(c.breaks, cfgTarget{label, after})
		c.continues = append(c.continues, cfgTarget{label, contTo})
		body := c.newBlock()
		head.jump(body)
		c.cur = body
		c.stmtList(s.Body.List)
		c.cur.jump(contTo)
		c.breaks = c.breaks[:len(c.breaks)-1]
		c.continues = c.continues[:len(c.continues)-1]
		c.cur = after
	case *ast.RangeStmt:
		label := c.takeLabel()
		c.emit(cfgNode{cond: s.X}) // the range operand is evaluated once
		head := c.startBlock()
		after := c.newBlock()
		head.jump(after) // the body may run zero times
		c.breaks = append(c.breaks, cfgTarget{label, after})
		c.continues = append(c.continues, cfgTarget{label, head})
		body := c.newBlock()
		head.jump(body)
		c.cur = body
		c.stmtList(s.Body.List)
		c.cur.jump(head)
		c.breaks = c.breaks[:len(c.breaks)-1]
		c.continues = c.continues[:len(c.continues)-1]
		c.cur = after
	case *ast.SwitchStmt:
		label := c.takeLabel()
		if s.Init != nil {
			c.emit(cfgNode{stmt: s.Init})
		}
		if s.Tag != nil {
			c.emit(cfgNode{cond: s.Tag})
		}
		c.buildClauses(s.Body.List, label, true)
	case *ast.TypeSwitchStmt:
		label := c.takeLabel()
		if s.Init != nil {
			c.emit(cfgNode{stmt: s.Init})
		}
		c.emit(cfgNode{stmt: s.Assign})
		c.buildClauses(s.Body.List, label, false)
	case *ast.SelectStmt:
		label := c.takeLabel()
		head := c.cur
		after := c.newBlock()
		c.breaks = append(c.breaks, cfgTarget{label, after})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			clB := c.newBlock()
			head.jump(clB)
			c.cur = clB
			if cc.Comm != nil {
				c.emit(cfgNode{stmt: cc.Comm})
			}
			c.stmtList(cc.Body)
			c.cur.jump(after)
		}
		c.breaks = c.breaks[:len(c.breaks)-1]
		// No head→after edge: a select always runs exactly one clause
		// (an empty select blocks forever, which keeps after
		// unreachable — also correct).
		c.cur = after
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if to := findTarget(c.breaks, labelName(s.Label)); to != nil {
				c.cur.jump(to)
			}
			c.terminate()
		case token.CONTINUE:
			if to := findTarget(c.continues, labelName(s.Label)); to != nil {
				c.cur.jump(to)
			}
			c.terminate()
		case token.GOTO:
			c.gotos = append(c.gotos, pendingGoto{c.cur, labelName(s.Label)})
			c.terminate()
		case token.FALLTHROUGH:
			if n := len(c.fallts); n > 0 && c.fallts[n-1] != nil {
				c.cur.jump(c.fallts[n-1])
			}
			c.terminate()
		}
	case *ast.ReturnStmt:
		c.emit(cfgNode{stmt: s})
		c.cur.jump(c.g.exit)
		c.terminate()
	case *ast.ExprStmt:
		c.emit(cfgNode{stmt: s})
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && isBuiltinOrUnresolved(c.info, id) {
				c.terminate() // no successors: panic never falls through
			}
		}
	default:
		// Flat statements: assignments, declarations, sends, inc/dec,
		// go, defer, empty.
		c.emit(cfgNode{stmt: s})
	}
}

// buildClauses lowers the clause list of an expression or type switch.
// Case-list expressions are emitted as condition nodes at the head of
// their clause. An expression switch may fall through to the next
// clause; both kinds fall past the switch entirely when no default
// clause exists.
func (c *cfgBuilder) buildClauses(clauses []ast.Stmt, label string, allowFallthrough bool) {
	head := c.cur
	after := c.newBlock()
	c.breaks = append(c.breaks, cfgTarget{label, after})
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		blocks[i] = c.newBlock()
		head.jump(blocks[i])
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.jump(after)
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		c.cur = blocks[i]
		for _, e := range cc.List {
			c.emit(cfgNode{cond: e})
		}
		ft := (*cfgBlock)(nil)
		if allowFallthrough && i+1 < len(blocks) {
			ft = blocks[i+1]
		}
		c.fallts = append(c.fallts, ft)
		c.stmtList(cc.Body)
		c.fallts = c.fallts[:len(c.fallts)-1]
		c.cur.jump(after)
	}
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.cur = after
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}
