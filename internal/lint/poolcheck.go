package lint

import (
	"go/ast"
	"go/types"
)

// PoolCheck enforces the frame-pool ownership discipline the
// zero-allocation render loop depends on (internal/frame.Pool):
//
//   - A frame acquired from a pool — any method named Get whose result
//     is a type named Frame — must be released on every path: an
//     explicit Release() on all branches, a defer, or an ownership
//     hand-off (returning the frame, passing it to a call, storing it,
//     or capturing it in a closure). A path that returns or panics
//     while still holding the frame leaks a pool buffer; dropping the
//     result on the floor or reassigning the variable before releasing
//     orphans it outright.
//   - A Retain() call takes an extra reference that must be balanced:
//     the retained frame needs a reachable Release, or the reference
//     must visibly move somewhere longer-lived (a store, a return, a
//     call). Protocols that release in a different function (a cache
//     releasing at eviction) are beyond the analysis and carry a
//     //v2v:nolint(poolcheck) with the reason.
//
// The walk is the same CFG-backed all-paths machinery as the ledger
// analyzer (cfg.go), instantiated with Release as the discharging
// method. Because any non-receiver use counts as a hand-off, the
// analyzer is deliberately permissive: it catches the classic leak
// shapes (acquire then early-return, acquire then fall off the end)
// without flagging every custody transfer it cannot follow.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "pool.Get/Retain frame acquisitions are Released on all paths or ownership is handed off",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, body *ast.BlockStmt) {
			pc := &poolChecker{ledgerChecker{
				pass:          pass,
				closures:      collectClosures(pass, body),
				cfg:           buildCFG(body, pass.Info),
				releaseMethod: "Release",
				noun:          "pooled frame",
			}}
			pc.checkStmt = pc.checkPoolStmt
			pc.findAcquires()
		})
	}
	return nil
}

type poolChecker struct {
	ledgerChecker
}

// isPoolAcquire reports whether call creates a frame-ownership
// obligation: a method named Get or Retain whose result is a type named
// Frame. The method name is returned for diagnostics.
func (pc *poolChecker) isPoolAcquire(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Get", "Retain":
	default:
		return "", false
	}
	if methodOf(pc.pass.Info, sel) == nil {
		return "", false // package-level function, not the pool protocol
	}
	obj := namedObjOf(pc.pass.Info.TypeOf(call))
	if obj == nil || obj.Name() != "Frame" {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkPoolStmt is the acquire matcher the shared findAcquires scaffold
// dispatches flat statements to.
func (pc *poolChecker) checkPoolStmt(s ast.Stmt, after cfgPoint) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return
		}
		kind, ok := pc.isPoolAcquire(call)
		if !ok {
			return
		}
		if kind == "Retain" {
			pc.checkBareRetain(call, after)
			return
		}
		pc.pass.Reportf(call.Pos(), "pooled frame discarded at acquisition; it can never be released")
	case *ast.ReturnStmt:
		return // acquiring in a return hands ownership to the caller
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		if _, ok := pc.isPoolAcquire(call); !ok {
			return
		}
		pc.checkFrameAssign(s, call, after)
	case *ast.GoStmt, *ast.DeferStmt:
		return // ownership moves into the spawned/deferred call
	}
}

// checkBareRetain handles `fr.Retain()` with the result discarded: the
// extra reference lives on the receiver, so the receiver itself must be
// released or handed off afterwards.
func (pc *poolChecker) checkBareRetain(call *ast.CallExpr, after cfgPoint) {
	sel := call.Fun.(*ast.SelectorExpr)
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := pc.pass.Info.Uses[id]; obj != nil {
			if pc.ensure(after, obj) == oReleased {
				return
			}
			pc.pass.Reportf(call.Pos(), "%s.Retain has no reachable %s.Release or hand-off; the extra reference is never dropped", id.Name, id.Name)
			return
		}
	}
	// Non-ident receiver (e.g. a field or index expression): fall back to
	// a textual reachability scan for Release on the same receiver.
	recv := types.ExprString(sel.X)
	if !pc.releaseReachable(nil, after, recv, nil) {
		pc.pass.Reportf(call.Pos(), "%s.Retain has no reachable %s.Release or hand-off; the extra reference is never dropped", recv, recv)
	}
}

func (pc *poolChecker) checkFrameAssign(s *ast.AssignStmt, call *ast.CallExpr, after cfgPoint) {
	if len(s.Lhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return // stored straight into a field or slot: ownership moved with it
	}
	if id.Name == "_" {
		pc.pass.Reportf(call.Pos(), "pooled frame assigned to _; it can never be released")
		return
	}
	obj := pc.pass.Info.Defs[id]
	if obj == nil {
		obj = pc.pass.Info.Uses[id] // plain `=` reassignment acquires too
	}
	if obj == nil {
		return
	}
	if pc.ensure(after, obj) != oReleased {
		pc.pass.Reportf(call.Pos(), "pooled frame %s is not released on every path (call %s.Release(), defer it, or hand the frame off)", id.Name, id.Name)
	}
}
