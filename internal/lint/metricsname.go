package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricsName enforces the metric-registration discipline obs.Registry
// relies on: every family is `v2v_` + snake_case, counters end in
// _total, histograms in a unit suffix (_seconds/_bytes), gauges never
// in _total, names are compile-time constants, and library packages
// register only at package scope (package-level var or init) so a
// metric exists exactly once for the life of the process rather than
// being re-looked-up on every request path.
var MetricsName = &Analyzer{
	Name: "metricsname",
	Doc:  "metrics use v2v_ snake_case names with kind suffixes and are registered at package scope in libraries",
	Run:  runMetricsName,
}

var metricFamilyRe = regexp.MustCompile(`^v2v_[a-z0-9]+(_[a-z0-9]+)*$`)

func runMetricsName(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			atPackageScope := false
			switch d := decl.(type) {
			case *ast.GenDecl:
				atPackageScope = d.Tok == token.VAR
			case *ast.FuncDecl:
				atPackageScope = d.Recv == nil && d.Name.Name == "init"
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, ok := registryCall(pass, call)
				if !ok {
					return true
				}
				if !isMain && !atPackageScope {
					pass.Reportf(call.Pos(), "library metrics must be registered at package scope (package-level var or init), not inside a function")
				}
				checkMetricName(pass, call, kind)
				return true
			})
		}
	}
	return nil
}

// registryCall reports whether call is Counter/Gauge/Histogram on a
// receiver whose (possibly pointer) type is named Registry, returning
// the method name.
func registryCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	kind := sel.Sel.Name
	if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
		return "", false
	}
	fn := methodOf(pass.Info, sel)
	if fn == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	obj := namedObjOf(sig.Recv().Type())
	if obj == nil || obj.Name() != "Registry" {
		return "", false
	}
	return kind, true
}

func checkMetricName(pass *Pass, call *ast.CallExpr, kind string) {
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name must be a compile-time string constant")
		return
	}
	name := constant.StringVal(tv.Value)
	family := name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family = name[:i]
	}
	if !metricFamilyRe.MatchString(family) {
		pass.Reportf(arg.Pos(), "metric family %q must be v2v_-prefixed snake_case ([a-z0-9_])", family)
		return
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(family, "_total") {
			pass.Reportf(arg.Pos(), "counter %q must end in _total", family)
		}
	case "Histogram":
		if !strings.HasSuffix(family, "_seconds") && !strings.HasSuffix(family, "_bytes") {
			pass.Reportf(arg.Pos(), "histogram %q must carry a unit suffix (_seconds or _bytes)", family)
		}
	case "Gauge":
		if strings.HasSuffix(family, "_total") {
			pass.Reportf(arg.Pos(), "gauge %q must not end in _total (reserved for counters)", family)
		}
	}
}
