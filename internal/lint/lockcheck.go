package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck guards against the deadlock class the singleflight cache
// fills are prone to: a sync mutex held across a potentially blocking
// operation — channel send/receive, select, WaitGroup.Wait, time.Sleep,
// or an os/net I/O call. The cache code's discipline is "unlock before
// you wait" (GetOrFill releases the map lock before <-fill.done, the
// arbiter unlocks around the evict callback); this analyzer makes that
// discipline mechanical.
//
// The walker tracks the set of held locks per path, keyed by the
// receiver expression text (mu resolution goes through go/types, so
// embedded mutexes and *sync.RWMutex count). Branches are merged
// conservatively: a lock held on either side of an if is considered
// held after it. Function literals run in their own goroutine or frame
// and are analyzed separately with an empty held set. sync.Cond.Wait is
// exempt — it requires holding the lock by contract.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "no sync mutex held across channel ops, select, WaitGroup.Wait, sleeps, or os/net I/O",
	Run:  runLockCheck,
}

type lockState map[string]token.Pos // receiver text -> Lock() position

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockState) keys() string {
	ks := make([]string, 0, len(s))
	for k := range s {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ", ")
}

func runLockCheck(pass *Pass) error {
	lw := &lockWalker{pass: pass}
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, body *ast.BlockStmt) {
			lw.walk(body.List, lockState{})
		})
	}
	return nil
}

type lockWalker struct {
	pass *Pass
}

// syncMethod resolves call to a method of the sync package (through
// embedding) and returns its name, or "".
func (lw *lockWalker) syncMethod(call *ast.CallExpr) (string, *ast.SelectorExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn := methodOf(lw.pass.Info, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	return fn.Name(), sel
}

// walk processes stmts under held and returns the held set at the exit
// plus whether every path through stmts terminates (return/branch).
func (lw *lockWalker) walk(stmts []ast.Stmt, held lockState) (lockState, bool) {
	for _, s := range stmts {
		var terminated bool
		held, terminated = lw.walkStmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (lw *lockWalker) walkStmt(s ast.Stmt, held lockState) (lockState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, sel := lw.syncMethod(call); sel != nil {
				key := types.ExprString(sel.X)
				switch name {
				case "Lock", "RLock":
					lw.checkExpr(sel.X, held) // evaluating the receiver may itself block
					held[key] = call.Pos()
					return held, false
				case "Unlock", "RUnlock":
					delete(held, key)
					return held, false
				}
			}
		}
		lw.checkExpr(s.X, held)
		return held, false
	case *ast.SendStmt:
		if len(held) > 0 {
			lw.pass.Reportf(s.Arrow, "channel send while holding %s", held.keys())
		}
		lw.checkExpr(s.Chan, held)
		lw.checkExpr(s.Value, held)
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lw.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			lw.checkExpr(e, held)
		}
		return held, false
	case *ast.DeclStmt:
		lw.checkExpr(s, held)
		return held, false
	case *ast.IncDecStmt:
		lw.checkExpr(s.X, held)
		return held, false
	case *ast.DeferStmt:
		// The deferred call runs at return; evaluating its arguments
		// happens now.
		for _, a := range s.Call.Args {
			lw.checkExpr(a, held)
		}
		return held, false
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			lw.checkExpr(a, held)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lw.checkExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return lw.walk(s.List, held)
	case *ast.LabeledStmt:
		return lw.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = lw.walkStmt(s.Init, held)
		}
		lw.checkExpr(s.Cond, held)
		thenHeld, thenTerm := lw.walk(s.Body.List, held.clone())
		elseHeld, elseTerm := held.clone(), false
		if s.Else != nil {
			elseHeld, elseTerm = lw.walkStmt(s.Else, held.clone())
		}
		return mergeLocks(thenHeld, thenTerm, elseHeld, elseTerm)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = lw.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			lw.checkExpr(s.Cond, held)
		}
		bodyHeld, _ := lw.walk(s.Body.List, held.clone())
		if s.Post != nil {
			bodyHeld, _ = lw.walkStmt(s.Post, bodyHeld)
		}
		out, _ := mergeLocks(held, false, bodyHeld, false)
		return out, false
	case *ast.RangeStmt:
		if len(held) > 0 {
			if t, ok := lw.pass.Info.TypeOf(s.X).Underlying().(*types.Chan); ok && t != nil {
				lw.pass.Reportf(s.For, "range over channel while holding %s", held.keys())
			}
		}
		lw.checkExpr(s.X, held)
		bodyHeld, _ := lw.walk(s.Body.List, held.clone())
		out, _ := mergeLocks(held, false, bodyHeld, false)
		return out, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = lw.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			lw.checkExpr(s.Tag, held)
		}
		return lw.walkCases(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = lw.walkStmt(s.Init, held)
		}
		return lw.walkCases(s.Body.List, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			lw.pass.Reportf(s.Select, "select while holding %s", held.keys())
		}
		return lw.walkCases(s.Body.List, held)
	default:
		return held, false
	}
}

// walkCases merges the exits of every case body (union of held locks).
// Termination is never claimed: a switch without a default may run no
// case at all, and being conservative only means we keep scanning.
func (lw *lockWalker) walkCases(clauses []ast.Stmt, held lockState) (lockState, bool) {
	out := held.clone()
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				lw.checkExpr(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			// The comm op itself is covered by the select diagnostic.
			body = c.Body
		}
		caseHeld, _ := lw.walk(body, held.clone())
		out, _ = mergeLocks(out, false, caseHeld, false)
	}
	return out, false
}

func mergeLocks(a lockState, aTerm bool, b lockState, bTerm bool) (lockState, bool) {
	switch {
	case aTerm && bTerm:
		return a, true
	case aTerm:
		return b, false
	case bTerm:
		return a, false
	}
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out, false
}

// checkExpr reports blocking operations inside an expression evaluated
// while held is non-empty. Function literals are skipped: their bodies
// run elsewhere and are walked independently with an empty held set.
func (lw *lockWalker) checkExpr(n ast.Node, held lockState) {
	if len(held) == 0 {
		return
	}
	inspectNoFuncLit(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lw.pass.Reportf(n.OpPos, "channel receive while holding %s", held.keys())
			}
		case *ast.CallExpr:
			lw.checkBlockingCall(n, held)
		}
		return true
	})
}

func (lw *lockWalker) checkBlockingCall(call *ast.CallExpr, held lockState) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := methodOf(lw.pass.Info, sel)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "sync" && fn.Name() == "Wait":
		// Cond.Wait requires the lock by contract; WaitGroup.Wait (and
		// anything else named Wait in sync) must not run under one.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if obj := namedObjOf(sig.Recv().Type()); obj != nil && obj.Name() == "Cond" {
				return
			}
		}
		lw.pass.Reportf(call.Pos(), "sync.%s.Wait while holding %s", recvName(fn), held.keys())
	case pkg == "time" && fn.Name() == "Sleep":
		lw.pass.Reportf(call.Pos(), "time.Sleep while holding %s", held.keys())
	case pkg == "os" || pkg == "net" || strings.HasPrefix(pkg, "net/"):
		lw.pass.Reportf(call.Pos(), "%s I/O call %s.%s while holding %s", pkg, types.ExprString(sel.X), fn.Name(), held.keys())
	case pkg == "io" && (fn.Name() == "Copy" || fn.Name() == "ReadAll" || fn.Name() == "ReadFull"):
		lw.pass.Reportf(call.Pos(), "io.%s while holding %s", fn.Name(), held.keys())
	}
}

func recvName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if obj := namedObjOf(sig.Recv().Type()); obj != nil {
			return obj.Name()
		}
	}
	return "?"
}
