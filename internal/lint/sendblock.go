package lint

import (
	"go/ast"
	"go/token"
)

// SendBlock is the static twin of the cancellation plumbing: code that
// was handed a context.Context has promised its caller it can be
// canceled, so it must not park forever on a bare channel operation. In
// any function (or nested literal) with a context.Context parameter in
// scope, every channel send and receive must sit in a `select` that
// also has a `case <-ctx.Done()` arm or a `default` case — the two
// shapes that keep the operation from outliving the caller's deadline.
//
// Receiving from ctx.Done() itself is exempt (that IS waiting for
// cancellation), close() never blocks, and `for range ch` is exempt —
// it is the canonical worker shape, ended by the producer closing the
// channel. Operations that are provably
// non-blocking for protocol reasons the analysis cannot see — a
// buffered channel sized to its senders, a queue drained by the
// function's own defer — carry //v2v:nolint(sendblock) with the
// reason.
var SendBlock = &Analyzer{
	Name: "sendblock",
	Doc:  "channel sends/receives in context-bearing code sit in a select with ctx.Done() or default",
	Run:  runSendBlock,
}

func runSendBlock(pass *Pass) error {
	sb := &sendblockChecker{pass: pass}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				sb.walk(fd.Body, hasCtxParam(pass, fd.Type))
			}
		}
	}
	return nil
}

type sendblockChecker struct {
	pass *Pass
}

func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.Info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// walk visits a function body. cancelable code descends into nested
// literals (they capture the context); a literal with its own context
// parameter becomes cancelable regardless of its surroundings.
func (sb *sendblockChecker) walk(body *ast.BlockStmt, cancelable bool) {
	// allowed maps each select communication operation to whether its
	// select has an escape arm (ctx.Done() or default).
	allowed := map[ast.Node]bool{}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sb.walk(n.Body, cancelable || hasCtxParam(sb.pass, n.Type))
			return false
		case *ast.SelectStmt:
			ok := selectEscapes(sb.pass, n)
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					continue
				}
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					switch m.(type) {
					case *ast.SendStmt, *ast.UnaryExpr:
						allowed[m] = ok
					}
					return true
				})
			}
		case *ast.SendStmt:
			if !cancelable {
				return true
			}
			if ok, in := allowed[n]; !in || !ok {
				sb.pass.Reportf(n.Pos(), "channel send in cancelable code must sit in a select with a ctx.Done() or default case")
			}
		case *ast.UnaryExpr:
			if !cancelable || n.Op != token.ARROW {
				return true
			}
			if isCtxDoneRecv(sb.pass, n) {
				return true // waiting for cancellation is the point
			}
			if ok, in := allowed[n]; !in || !ok {
				sb.pass.Reportf(n.Pos(), "channel receive in cancelable code must sit in a select with a ctx.Done() or default case")
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// selectEscapes reports whether sel has a default case or a
// case <-ctx.Done() arm.
func selectEscapes(pass *Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default case
		}
		found := false
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && isCtxDoneRecv(pass, u) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isCtxDoneRecv reports whether u is `<-x.Done()` on a context.
func isCtxDoneRecv(pass *Pass, u *ast.UnaryExpr) bool {
	if u.Op != token.ARROW {
		return false
	}
	call, ok := u.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := pass.Info.TypeOf(sel.X)
	return t != nil && isContextType(t)
}
