package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ErrWrap guards the error-identity contract: sentinel errors like
// container.ErrCorruptPacket survive package boundaries only when
// wrapped with %w, and they can only be recognized with errors.Is once
// wrapping is in play. Comparing errors with == silently breaks the
// moment anyone adds a fmt.Errorf layer, and formatting an error with
// %v inside fmt.Errorf severs the chain errors.Is walks.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "compare errors with errors.Is, never ==; wrap error causes in fmt.Errorf with %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				xt := pass.Info.TypeOf(n.X)
				yt := pass.Info.TypeOf(n.Y)
				if isUntypedNil(xt) || isUntypedNil(yt) {
					return true // err == nil is the one legitimate identity check
				}
				if implementsError(xt) && implementsError(yt) {
					hint := "errors.Is"
					if n.Op == token.NEQ {
						hint = "!errors.Is"
					}
					pass.Reportf(n.OpPos, "error compared with %s; use %s so wrapped errors still match", n.Op, hint)
				}
			case *ast.CallExpr:
				if calleeIsPkgFunc(pass.Info, n, "fmt", "Errorf") {
					checkErrorf(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func checkErrorf(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 || call.Ellipsis != token.NoPos {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, verb := range verbs {
		argIdx := i + 1
		if argIdx >= len(call.Args) {
			break
		}
		arg := call.Args[argIdx]
		if verb != 'w' && implementsError(pass.Info.TypeOf(arg)) && !isUntypedNil(pass.Info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "error argument formatted with %%%c; use %%w so the cause stays unwrappable", verb)
		}
	}
}

// formatVerbs returns the argument-consuming verbs of a fmt format
// string in order; a '*' width or precision consumes an argument and is
// emitted as '*'.
func formatVerbs(format string) []rune {
	var verbs []rune
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
	flags:
		for i < len(rs) {
			switch rs[i] {
			case '+', '-', '#', ' ', '0', '.', '1', '2', '3', '4', '5', '6', '7', '8', '9':
				i++
			case '*':
				verbs = append(verbs, '*')
				i++
			default:
				break flags
			}
		}
		if i < len(rs) && rs[i] != '%' {
			verbs = append(verbs, rs[i])
		}
	}
	return verbs
}
