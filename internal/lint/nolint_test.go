package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestNolintDirectives(t *testing.T) {
	pkg := loadTestPkg(t, filepath.Join("testdata", "src", "nolint"))
	diags, err := Run([]*Package{pkg}, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	count := func(analyzer, substr string) int {
		n := 0
		for _, d := range diags {
			if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
				n++
			}
		}
		return n
	}
	// SameLine and NextLine are suppressed; Bare, Unknown, and
	// WrongAnalyzer each leave their ctxcheck finding standing.
	if got := count("ctxcheck", "severs cancellation"); got != 3 {
		t.Errorf("ctxcheck findings = %d, want 3 (Bare, Unknown, WrongAnalyzer):\n%s", got, dump(diags))
	}
	// The reason-less directive is itself a finding.
	if got := count("nolint", "requires a written reason"); got != 1 {
		t.Errorf("bare-directive findings = %d, want 1:\n%s", got, dump(diags))
	}
	// As is the directive naming a nonexistent analyzer.
	if got := count("nolint", "unknown analyzer"); got != 1 {
		t.Errorf("unknown-analyzer findings = %d, want 1:\n%s", got, dump(diags))
	}
	// Stacked suppresses both analyzers at one line; StackedPartial names
	// only ctxcheck, so its sendblock finding is the single survivor.
	if got := count("sendblock", "channel send"); got != 1 {
		t.Errorf("sendblock findings = %d, want 1 (StackedPartial only):\n%s", got, dump(diags))
	}
	// Each new analyzer is suppressible by name: GoLeakSuppressed,
	// SendBlockSuppressed, and HotpathSuppressed must all stay silent.
	for _, quiet := range []string{"goleak", "hotpath"} {
		if got := count(quiet, ""); got != 0 {
			t.Errorf("%s findings = %d, want 0 (suppressed by name):\n%s", quiet, got, dump(diags))
		}
	}
	if len(diags) != 6 {
		t.Errorf("total findings = %d, want 6:\n%s", len(diags), dump(diags))
	}
}

func dump(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
