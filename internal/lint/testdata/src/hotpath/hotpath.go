// Package hotpath exercises the hotpath analyzer: directive grammar,
// placement, and AST-visible allocation hazards.
package hotpath

func work() {}

// sum is a well-formed zero-allocation hot function.
//
//v2v:hotpath
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// spawns puts a goroutine on the hot path.
//
//v2v:hotpath
func spawns(done chan struct{}) {
	go func() { // want "hotpath function spawns spawns a goroutine"
		close(done)
	}()
}

// maker allocates a map and a channel per call.
//
//v2v:hotpath
func maker() int {
	m := make(map[int]int)  // want "hotpath function maker makes a map"
	ch := make(chan int, 1) // want "hotpath function maker makes a channel"
	ch <- 1
	m[0] = <-ch
	return m[0]
}

// A slice make is left to escape analysis (it may stay on the stack).
//
//v2v:hotpath
func slicemaker() int {
	var buf [8]int
	s := buf[:0]
	s = append(s, 1)
	return s[0]
}

//v2v:hotpath extra words // want "malformed v2v:hotpath directive"
func trailing() { work() }
