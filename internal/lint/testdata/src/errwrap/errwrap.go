// Package errwrap is lint testdata: error comparison and wrapping
// patterns.
package errwrap

import (
	"errors"
	"fmt"
	"io"
)

var ErrSentinel = errors.New("sentinel")

func GoodIs(err error) bool    { return errors.Is(err, ErrSentinel) }
func GoodNil(err error) bool   { return err == nil }
func GoodNotNil(err error) bool { return err != nil }
func GoodWrap(err error) error { return fmt.Errorf("op: %w", err) }

// GoodMulti: two %w verbs are fine (sentinel plus cause).
func GoodMulti(err error) error {
	return fmt.Errorf("%w: detail: %w", ErrSentinel, err)
}

// GoodNonError: non-error args may use any verb.
func GoodNonError(err error) error {
	return fmt.Errorf("op %s failed: %w", "name", err)
}

func BadEq(err error) bool {
	return err == ErrSentinel // want "use errors.Is"
}

func BadNeq(err error) bool {
	return err != io.EOF // want "use !errors.Is"
}

func BadVerb(err error) error {
	return fmt.Errorf("op failed: %v", err) // want "use %w"
}

func BadString(err error) error {
	return fmt.Errorf("op failed: %s", err) // want "use %w"
}

func BadPositional(n int, err error) error {
	return fmt.Errorf("op %d failed: %v", n, err) // want "use %w"
}
