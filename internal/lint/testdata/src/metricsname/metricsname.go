// Package metricsname is lint testdata: metric registration naming and
// placement. The local Registry mirrors internal/obs.
package metricsname

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter { return nil }
func (r *Registry) Gauge(name, help string) *Gauge     { return nil }
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return nil
}

func Default() *Registry { return nil }

var (
	goodTotal   = Default().Counter("v2v_frobs_total", "Frobs.")
	goodLabeled = Default().Counter(`v2v_frobs_total{kind="a"}`, "Frobs by kind.")
	goodGauge   = Default().Gauge("v2v_inflight", "In flight.")
	goodHist    = Default().Histogram("v2v_frob_seconds", "Latency.", nil)

	// Per-stage pipeline instruments: one family, stage label per series.
	goodStageFrames = Default().Counter(`v2v_stage_frames_total{stage="decode"}`, "Frames per stage.")
	goodStageBytes  = Default().Counter(`v2v_stage_bytes_total{stage="encode"}`, "Bytes per stage.")
	goodStageWall   = Default().Histogram(`v2v_stage_wall_seconds{stage="filter"}`, "Stage wall.", nil)

	badPrefix     = Default().Counter("frobs_total", "No prefix.")                                   // want "must be v2v_-prefixed"
	badCase       = Default().Counter("v2v_Frobs_total", "Camel case.")                              // want "snake_case"
	badCounter    = Default().Counter("v2v_frobs", "Counter sans _total.")                           // want "must end in _total"
	badGauge      = Default().Gauge("v2v_frobs_total", "Gauge with _total.")                         // want "must not end in _total"
	badHist       = Default().Histogram("v2v_frob_latency", "No unit.", nil)                         // want "unit suffix"
	badStageCount = Default().Counter(`v2v_stage_frames{stage="decode"}`, "Labeled sans _total.")    // want "must end in _total"
	badStageHist  = Default().Histogram(`v2v_stage_wall{stage="decode"}`, "Labeled sans unit.", nil) // want "unit suffix"
)

func init() {
	// Registration in init is package scope: fine.
	_ = Default().Counter("v2v_init_total", "Registered in init.")
}

func Register(name string) {
	_ = Default().Counter("v2v_lazy_total", "Lazily registered.") // want "package scope"
	_ = Default().Counter(name, "Dynamic name.")                  // want "package scope" "string constant"
}

var _ = []any{goodTotal, goodLabeled, goodGauge, goodHist,
	goodStageFrames, goodStageBytes, goodStageWall,
	badPrefix, badCase, badCounter, badGauge, badHist, badStageCount, badStageHist}
