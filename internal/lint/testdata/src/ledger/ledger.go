// Package ledger is lint testdata: span and reservation acquire/release
// pairing. The local Tracer/Span/Ledger mirror internal/obs and
// internal/media.
package ledger

import "errors"

type Span struct{}

func (s *Span) End()            {}
func (s *Span) Note(msg string) {}

type Tracer struct{}

func (t *Tracer) StartSpan(name string) *Span   { return &Span{} }
func (t *Tracer) Child(name string) *Span       { return &Span{} }
func (t *Tracer) ChildThread(name string) *Span { return &Span{} }

type Ledger struct{}

func (l *Ledger) Reserve(key string, n int64) bool { return true }
func (l *Ledger) Release(n int64)                  {}

var errFail = errors.New("fail")

// ---- spans: good ----

func GoodLinear(t *Tracer) {
	sp := t.StartSpan("x")
	sp.Note("hi")
	sp.End()
}

func GoodDefer(t *Tracer) error {
	sp := t.StartSpan("x")
	defer sp.End()
	return errFail
}

func GoodDeferClosure(t *Tracer) {
	sp := t.Child("x")
	defer func() { sp.End() }()
}

func GoodBranches(t *Tracer, fail bool) error {
	sp := t.StartSpan("x")
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

// GoodHandoff: returning the span moves ownership to the caller.
func GoodHandoff(t *Tracer) *Span {
	sp := t.StartSpan("x")
	sp.Note("handing off")
	return sp
}

// GoodArgHandoff: passing the span to another function moves ownership.
func GoodArgHandoff(t *Tracer) {
	sp := t.ChildThread("x")
	finish(sp)
}

func finish(sp *Span) { sp.End() }

// GoodClosureRelease: the error-path closure ends the span; calling it
// counts as a release (one-level closure resolution).
func GoodClosureRelease(t *Tracer, fail bool) error {
	sp := t.StartSpan("x")
	done := func() { sp.End() }
	if fail {
		done()
		return errFail
	}
	done()
	return nil
}

// GoodReacquire: end, then reuse the variable for a fresh span.
func GoodReacquire(t *Tracer) {
	sp := t.StartSpan("a")
	sp.End()
	sp = t.StartSpan("b")
	sp.End()
}

// ---- spans: bad ----

func BadLeakOnError(t *Tracer, fail bool) error {
	sp := t.StartSpan("x") // want "not ended on every path"
	if fail {
		return errFail
	}
	sp.End()
	return nil
}

func BadNeverEnded(t *Tracer) {
	sp := t.StartSpan("x") // want "not ended on every path"
	sp.Note("hi")
}

func BadDiscarded(t *Tracer) {
	t.StartSpan("x") // want "span discarded at creation"
}

func BadBlank(t *Tracer) {
	_ = t.StartSpan("x") // want "assigned to _"
}

func BadReassign(t *Tracer) {
	sp := t.StartSpan("a") // want "not ended on every path"
	sp = t.StartSpan("b")  // want "reassigned before End"
	sp.End()
}

func BadPanic(t *Tracer) {
	sp := t.StartSpan("x") // want "not ended on every path"
	sp.Note("about to blow")
	panic("boom")
}

// ---- reservations ----

// GoodReserveDefer: the arbiter idiom — bail if denied, otherwise defer
// the release.
func GoodReserveDefer(l *Ledger) error {
	if !l.Reserve("k", 10) {
		return errFail
	}
	defer l.Release(10)
	return nil
}

// GoodReserveTransfer: admit()-style ownership transfer to the caller.
func GoodReserveTransfer(l *Ledger) bool {
	return l.Reserve("k", 10)
}

func GoodReserveVar(l *Ledger) error {
	ok := l.Reserve("k", 10)
	if !ok {
		return errFail
	}
	defer l.Release(10)
	return nil
}

// GoodReserveReturnVar: returning the bool transfers ownership.
func GoodReserveReturnVar(l *Ledger) bool {
	ok := l.Reserve("k", 10)
	return ok
}

func BadReserveDropped(l *Ledger) {
	l.Reserve("k", 10) // want "Reserve result discarded"
}

func BadReserveBlank(l *Ledger) {
	_ = l.Reserve("k", 10) // want "Reserve result discarded"
}

func BadReserveNoRelease(l *Ledger) {
	ok := l.Reserve("k", 10) // want "no reachable"
	if ok {
		work()
	}
}

func BadReserveCondNoRelease(l *Ledger) {
	if !l.Reserve("k", 10) { // want "no reachable"
		return
	}
	work()
}

func work() {}
