// Package poolcheck is lint testdata: frames acquired from a pool
// (Get) or reference-counted up (Retain) must be Released on every
// path, or ownership must visibly move. The local Pool/Frame mirror
// internal/frame.
package poolcheck

import "errors"

type Frame struct {
	Pix  []byte
	W, H int
}

func (f *Frame) Retain() *Frame { return f }
func (f *Frame) Release()       {}

type Pool struct{}

func (p *Pool) Get(w, h int) *Frame { return &Frame{} }

var errFail = errors.New("fail")

// ---- good ----

func GoodLinear(p *Pool) {
	fr := p.Get(2, 2)
	fr.Pix[0] = 1
	fr.Release()
}

func GoodDefer(p *Pool) error {
	fr := p.Get(2, 2)
	defer fr.Release()
	return errFail
}

func GoodBranches(p *Pool, fail bool) error {
	fr := p.Get(2, 2)
	if fail {
		fr.Release()
		return errFail
	}
	fr.Release()
	return nil
}

// GoodHandoffReturn: returning the frame moves ownership to the caller.
func GoodHandoffReturn(p *Pool) *Frame {
	fr := p.Get(2, 2)
	fr.Pix[0] = 1
	return fr
}

// GoodHandoffArg: passing the frame to another function moves ownership.
func GoodHandoffArg(p *Pool) {
	fr := p.Get(2, 2)
	consume(fr)
}

func consume(fr *Frame) { fr.Release() }

// GoodClosureRelease: capturing the frame in a closure extends its
// lifetime beyond the analysis — ownership hand-off.
func GoodClosureRelease(p *Pool, fail bool) error {
	fr := p.Get(2, 2)
	done := func() { fr.Release() }
	if fail {
		done()
		return errFail
	}
	done()
	return nil
}

// GoodRetainStored: the extra reference visibly moves into a field;
// whoever owns the field releases it later.
type holder struct{ prev *Frame }

func (h *holder) GoodRetainStored(fr *Frame) {
	fr.Retain()
	if h.prev != nil {
		h.prev.Release()
	}
	h.prev = fr
}

// GoodRetainBalanced: the retained reference is dropped on every path.
func GoodRetainBalanced(p *Pool, fail bool) error {
	fr := p.Get(2, 2)
	ref := fr.Retain()
	if fail {
		ref.Release()
		fr.Release()
		return errFail
	}
	ref.Release()
	fr.Release()
	return nil
}

// GoodReacquire: release, then reuse the variable for a fresh frame.
func GoodReacquire(p *Pool) {
	fr := p.Get(2, 2)
	fr.Release()
	fr = p.Get(3, 3)
	fr.Release()
}

// ---- bad ----

func BadLeakOnError(p *Pool, fail bool) error {
	fr := p.Get(2, 2) // want "pooled frame fr is not released on every path"
	if fail {
		return errFail // leaks fr
	}
	fr.Release()
	return nil
}

func BadNeverReleased(p *Pool) {
	fr := p.Get(2, 2) // want "pooled frame fr is not released on every path"
	fr.Pix[0] = 1
}

func BadDiscarded(p *Pool) {
	p.Get(2, 2) // want "pooled frame discarded at acquisition"
}

func BadBlank(p *Pool) {
	_ = p.Get(2, 2) // want "pooled frame assigned to _"
}

func BadReassign(p *Pool) {
	fr := p.Get(2, 2) // want "pooled frame fr is not released on every path"
	fr = p.Get(3, 3)  // want "reassigned before Release"
	fr.Release()
}

func BadPanicWhileHolding(p *Pool, fail bool) {
	fr := p.Get(2, 2) // want "pooled frame fr is not released on every path"
	if fail {
		panic("boom") // leaks fr
	}
	fr.Release()
}

func BadBareRetain(fr *Frame) {
	fr.Retain() // want "fr.Retain has no reachable fr.Release or hand-off"
	fr.Pix[0] = 1
}

func BadRetainAssignLeak(p *Pool, fail bool) error {
	fr := p.Get(2, 2)
	defer fr.Release()
	ref := fr.Retain() // want "pooled frame ref is not released on every path"
	if fail {
		return errFail // leaks the extra reference
	}
	ref.Release()
	return nil
}

// SuppressedLeak: the escape hatch for cross-function protocols.
func SuppressedLeak(p *Pool) {
	//v2v:nolint(poolcheck) released by the cache at eviction, beyond intra-function analysis
	fr := p.Get(2, 2)
	fr.Pix[0] = 1
}
