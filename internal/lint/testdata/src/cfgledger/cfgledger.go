// Package cfgledger exercises the ledger analyzer over control-flow
// shapes only the CFG backend tracks precisely: loops (both the
// zero-iteration path and loop-transparency), labeled break, goto,
// select arms, and switch without default. The plain straight-line
// shapes live in testdata/src/ledger.
package cfgledger

type Span struct{}

func (s *Span) End()                    {}
func (s *Span) SetAttr(k string, v int) {}

type Tracer struct{}

func (t *Tracer) StartSpan(name string) *Span { return &Span{} }

func work() {}

// The walk is loop-transparent: a loop between the acquire and the End
// does not break the release path.
func GoodAfterLoop(t *Tracer, xs []int) {
	sp := t.StartSpan("x")
	for _, x := range xs {
		sp.SetAttr("x", x)
	}
	sp.End()
}

// A release only inside the loop body does not discharge the
// zero-iteration path around it.
func BadOnlyInLoop(t *Tracer, xs []int) {
	sp := t.StartSpan("x") // want "span sp is not ended on every path"
	for range xs {
		sp.End()
		return
	}
}

// Looping forever while holding is a leak, not an excuse.
func BadForever(t *Tracer) {
	sp := t.StartSpan("x") // want "span sp is not ended on every path"
	for {
		sp.SetAttr("spin", 1)
		work()
	}
}

// An End on the sole terminating path of an infinite loop releases.
func GoodForeverExit(t *Tracer, ch chan bool) {
	sp := t.StartSpan("x")
	for {
		if <-ch {
			sp.End()
			return
		}
	}
}

// break with a label lands on the statement after the labeled loop; the
// End there covers every path out.
func GoodLabeledBreak(t *Tracer, xs []int) {
	sp := t.StartSpan("x")
outer:
	for {
		for _, x := range xs {
			if x > 0 {
				break outer
			}
		}
		work()
	}
	sp.End()
}

// goto follows the real edge: both the jump and the fall-through reach
// the End under the label.
func GoodGoto(t *Tracer, n int) {
	sp := t.StartSpan("x")
	if n > 0 {
		goto done
	}
	sp.SetAttr("n", n)
done:
	sp.End()
}

// ... and a goto that jumps over the only End leaks that path.
func BadGotoSkip(t *Tracer, n int) {
	sp := t.StartSpan("x") // want "span sp is not ended on every path"
	if n > 0 {
		goto out
	}
	sp.End()
	return
out:
	work()
}

// Sending the span away in a select arm is an ownership hand-off; the
// other arm ends it explicitly. Both arms resolve.
func GoodSelectSend(t *Tracer, ch chan *Span, done chan struct{}) {
	sp := t.StartSpan("x")
	select {
	case ch <- sp:
	case <-done:
		sp.End()
	}
}

// A select arm that neither ends nor hands off leaks that path.
func BadSelectLeak(t *Tracer, done chan struct{}, tick chan int) {
	sp := t.StartSpan("x") // want "span sp is not ended on every path"
	select {
	case <-done:
		sp.End()
	case <-tick:
	}
}

// switch without a default has an implicit no-case path that skips
// every arm.
func BadSwitchNoDefault(t *Tracer, n int) {
	sp := t.StartSpan("x") // want "span sp is not ended on every path"
	switch n {
	case 0:
		sp.End()
	case 1:
		sp.End()
	}
}

// With a default the arms are exhaustive.
func GoodSwitchDefault(t *Tracer, n int) {
	sp := t.StartSpan("x")
	switch n {
	case 0:
		sp.End()
	default:
		sp.End()
	}
}

// fallthrough chains into the next arm's End.
func GoodFallthrough(t *Tracer, n int) {
	sp := t.StartSpan("x")
	switch n {
	case 0:
		sp.SetAttr("n", n)
		fallthrough
	case 1:
		sp.End()
	default:
		sp.End()
	}
}
