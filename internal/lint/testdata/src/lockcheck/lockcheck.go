// Package lockcheck is lint testdata: mutexes held (or not) across
// blocking operations.
package lockcheck

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// Good: lock released before returning, no blocking op inside.
func Good(g *guarded) int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return n
}

// GoodUnlockBeforeRecv: the singleflight discipline — drop the lock,
// then wait.
func GoodUnlockBeforeRecv(g *guarded) int {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	return <-g.ch
}

func BadRecvWhileLocked(g *guarded) int {
	g.mu.Lock()
	v := <-g.ch // want "channel receive while holding"
	g.mu.Unlock()
	return v
}

func BadSendWhileLocked(g *guarded) {
	g.mu.Lock()
	g.ch <- 1 // want "channel send while holding"
	g.mu.Unlock()
}

// BadDeferUnlockRecv: defer keeps the lock held until return, so the
// receive still happens under it.
func BadDeferUnlockRecv(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive while holding"
}

func BadSelectWhileLocked(g *guarded) {
	g.mu.Lock()
	select { // want "select while holding"
	case v := <-g.ch:
		g.n = v
	default:
	}
	g.mu.Unlock()
}

func BadSleep(g *guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding"
	g.mu.Unlock()
}

func BadWaitGroup(g *guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want "Wait while holding"
	g.mu.Unlock()
}

type embedded struct {
	sync.Mutex
	ch chan int
}

// BadEmbedded: the mutex is embedded; resolution goes through go/types,
// not the method name on the receiver.
func BadEmbedded(e *embedded) int {
	e.Lock()
	v := <-e.ch // want "channel receive while holding"
	e.Unlock()
	return v
}

// GoodCond: sync.Cond.Wait requires holding the lock by contract.
func GoodCond(c *sync.Cond, ready *bool) {
	c.L.Lock()
	for !*ready {
		c.Wait()
	}
	c.L.Unlock()
}

// GoodBranch: each path unlocks before its blocking op.
func GoodBranch(g *guarded, b bool) int {
	g.mu.Lock()
	if b {
		g.mu.Unlock()
		return <-g.ch
	}
	g.mu.Unlock()
	return 0
}

// BadMergedBranch: only one branch unlocks; after the join the lock may
// still be held.
func BadMergedBranch(g *guarded, b bool) int {
	g.mu.Lock()
	if b {
		g.mu.Unlock()
	}
	return <-g.ch // want "channel receive while holding"
}

// GoodFuncLit: the literal's body runs later (possibly in another
// goroutine); it is analyzed separately with no locks held.
func GoodFuncLit(g *guarded) func() int {
	g.mu.Lock()
	f := func() int { return <-g.ch }
	g.mu.Unlock()
	return f
}

// BadRangeChan: ranging over a channel blocks per element.
func BadRangeChan(g *guarded) int {
	sum := 0
	g.mu.Lock()
	for v := range g.ch { // want "range over channel while holding"
		sum += v
	}
	g.mu.Unlock()
	return sum
}
