// Package ctxcheck is lint testdata: known-good and known-bad context
// handling. Annotated lines must produce a diagnostic whose message
// contains the quoted substring.
package ctxcheck

import "context"

// Good: the ctx parameter is consulted.
func Good(ctx context.Context) error { return ctx.Err() }

// GoodClosure: capturing ctx in a closure counts as consulting it.
func GoodClosure(ctx context.Context) func() error {
	return func() error { return ctx.Err() }
}

// GoodForward: passing ctx on counts.
func GoodForward(ctx context.Context) error { return Good(ctx) }

func Dropped(ctx context.Context) int { // want "never uses its context.Context parameter"
	return 1
}

func Blank(_ context.Context) int { // want "discards its context.Context parameter"
	return 2
}

// unexported functions may ignore ctx (internal helpers that thread it
// for signature symmetry).
func unexportedDropped(ctx context.Context) int { return 3 }

func Root() context.Context {
	return context.Background() // want "severs cancellation"
}

func Todo() context.Context {
	return context.TODO() // want "severs cancellation"
}

var _ = unexportedDropped
