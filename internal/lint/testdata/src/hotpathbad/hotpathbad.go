// Package hotpathbad holds v2v:hotpath directives in places where they
// guard nothing; the misplacement diagnostics are asserted directly in
// hotpath_test.go (the directive line cannot also carry a // want
// annotation).
package hotpathbad

//v2v:hotpath
type notAFunc struct{}

func insideBody() notAFunc {
	//v2v:hotpath
	return notAFunc{}
}
