// Package sendblock exercises the sendblock analyzer: channel
// operations in context-bearing code must not block past cancellation.
package sendblock

import "context"

func work() {}

// A bare send in a ctx-bearing function can outlive the caller's
// deadline.
func BadBareSend(ctx context.Context, out chan int) {
	out <- 1 // want "channel send in cancelable code must sit in a select"
}

// Same for a bare receive.
func BadBareRecv(ctx context.Context, in chan int) {
	v := <-in // want "channel receive in cancelable code must sit in a select"
	_ = v
}

// A select without an escape arm is still a park.
func BadSelectNoEscape(ctx context.Context, a, b chan int) {
	select {
	case <-a: // want "channel receive in cancelable code must sit in a select"
	case <-b: // want "channel receive in cancelable code must sit in a select"
	}
}

// The canonical shape: select with a ctx.Done() arm.
func GoodSelectDone(ctx context.Context, out chan int) {
	select {
	case out <- 1:
	case <-ctx.Done():
	}
}

// A default case makes the operation non-blocking.
func GoodSelectDefault(ctx context.Context, out chan int) {
	select {
	case out <- 1:
	default:
	}
}

// Waiting on ctx.Done() itself is the point, not a park.
func GoodDoneRecv(ctx context.Context) {
	<-ctx.Done()
}

// Code without a context in scope made no cancellation promise.
func GoodNoCtx(out chan int) {
	out <- 1
}

// A nested literal captures the enclosing context: still cancelable.
func BadNestedLit(ctx context.Context, out chan int) {
	f := func() {
		out <- 1 // want "channel send in cancelable code must sit in a select"
	}
	f()
}

// A literal with its own ctx parameter is cancelable even when the
// enclosing function is not.
func BadLitOwnCtx(out chan int) func(context.Context) {
	return func(ctx context.Context) {
		out <- 1 // want "channel send in cancelable code must sit in a select"
	}
}

// Ranging over a channel is the joinable worker shape, ended by close.
func GoodRange(ctx context.Context, in chan int) {
	for range in {
		work()
	}
}

// Receives in a select clause BODY are past the select and count again.
func BadRecvInClauseBody(ctx context.Context, a, b chan int) {
	select {
	case <-a:
		<-b // want "channel receive in cancelable code must sit in a select"
	case <-ctx.Done():
	}
}

// A reasoned suppression for protocol-level non-blocking ops.
func GoodNolint(ctx context.Context, sem chan struct{}) {
	sem <- struct{}{} //v2v:nolint(sendblock) buffered to worker count; never blocks
}
