// Package nolint is lint testdata for the suppression mechanism itself;
// expectations live in nolint_test.go rather than want-annotations
// because the directives under test share the comment position the
// annotations would need.
package nolint

import "context"

func SameLine() context.Context {
	return context.Background() //v2v:nolint(ctxcheck) fixture: producing a root context is this function's purpose
}

func NextLine() context.Context {
	//v2v:nolint(ctxcheck) fixture: standalone directive covers the next line
	return context.Background()
}

func Bare() context.Context {
	return context.Background() //v2v:nolint(ctxcheck)
}

func Unknown() context.Context {
	return context.Background() //v2v:nolint(nosuch) directive names an analyzer that does not exist
}

func WrongAnalyzer() {
	//v2v:nolint(errwrap) fixture: directive names the wrong analyzer, so the finding survives
	_ = context.Background()
}
