// Package nolint is lint testdata for the suppression mechanism itself;
// expectations live in nolint_test.go rather than want-annotations
// because the directives under test share the comment position the
// annotations would need.
package nolint

import "context"

func SameLine() context.Context {
	return context.Background() //v2v:nolint(ctxcheck) fixture: producing a root context is this function's purpose
}

func NextLine() context.Context {
	//v2v:nolint(ctxcheck) fixture: standalone directive covers the next line
	return context.Background()
}

func Bare() context.Context {
	return context.Background() //v2v:nolint(ctxcheck)
}

func Unknown() context.Context {
	return context.Background() //v2v:nolint(nosuch) directive names an analyzer that does not exist
}

func WrongAnalyzer() {
	//v2v:nolint(errwrap) fixture: directive names the wrong analyzer, so the finding survives
	_ = context.Background()
}

// ctxVal exists so one expression can trip ctxcheck and sendblock at
// once: the send is the sendblock finding, the fresh root the ctxcheck
// one, and both land on the same line.
func ctxVal(context.Context) int { return 0 }

func Stacked(ctx context.Context, ch chan int) {
	_ = ctx.Err()
	ch <- ctxVal(context.Background()) //v2v:nolint(ctxcheck,sendblock) fixture: one stacked directive suppresses both analyzers
}

func StackedPartial(ctx context.Context, ch chan int) {
	_ = ctx.Err()
	ch <- ctxVal(context.Background()) //v2v:nolint(ctxcheck) fixture: names only ctxcheck, so the sendblock finding survives
}

func spin() {
	for {
	}
}

func GoLeakSuppressed() {
	go spin() //v2v:nolint(goleak) fixture: suppression by the goleak analyzer name
}

func SendBlockSuppressed(ctx context.Context, ch chan int) {
	_ = ctx.Err()
	ch <- 1 //v2v:nolint(sendblock) fixture: suppression by the sendblock analyzer name
}

//v2v:hotpath
func HotpathSuppressed() map[int]int {
	return make(map[int]int) //v2v:nolint(hotpath) fixture: suppression by the hotpath analyzer name
}
