// Package goleak exercises the goleak analyzer: goroutines in library
// code must be join-able or cancelable.
package goleak

import (
	"context"
	"sync"
)

func work() {}

// Fire-and-forget loop: nothing can stop or observe it.
func BadSpinner() {
	go func() { // want "goroutine is not joinable or cancelable"
		for {
			work()
		}
	}()
}

// Named spawn whose body has no signal either.
func spin() {
	for {
		work()
	}
}

func BadNamedSpawn() {
	go spin() // want "goroutine is not joinable or cancelable"
}

type server struct{ n int }

func (s *server) tick() { s.n++ }

// Method spawn with an unjoinable body.
func BadMethodSpawn(s *server) {
	go s.tick() // want "goroutine is not joinable or cancelable"
}

// A ctx.Done() check makes the worker cancelable.
func GoodCtxDone(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// Passing the context onward delegates cancellation.
func helper(ctx context.Context) { <-ctx.Done() }

func GoodCtxArg(ctx context.Context) {
	go helper(ctx)
}

// WaitGroup.Done ties the goroutine to a visible join.
func GoodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// A channel send hands the result (and the lifetime) to a peer.
func GoodChanSend(out chan int) {
	go func() {
		out <- 1
	}()
}

// Draining a channel ends when the producer closes it.
func GoodChanRange(in chan int) {
	go func() {
		for range in {
			work()
		}
	}()
}

// Receiving in a nested defer counts: it runs in the same goroutine.
func GoodDeferredRecv(sem chan struct{}) {
	go func() {
		defer func() { <-sem }()
		work()
	}()
}

// A channel-typed argument carries the signal into an opaque body.
func feed(ch chan int) { ch <- 1 }

func GoodChanArg(ch chan int) {
	go feed(ch)
}

// Same-package method resolution: drain closes a done channel.
type sink struct{ done chan struct{} }

func (s *sink) drain() {
	defer close(s.done)
	work()
}

func GoodMethodSpawn(s *sink) {
	go s.drain()
}

// Local closure resolution.
func GoodLocalClosure(done chan struct{}) {
	run := func() { <-done }
	go run()
}

// A reasoned nolint acknowledges a protocol the analysis cannot see.
func GoodNolint() {
	go spin() //v2v:nolint(goleak) process-lifetime telemetry pump, stopped by exit
}
