package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestHotPath(t *testing.T) { testAnalyzer(t, HotPath, "hotpath") }

// TestHotPathMisplaced pins the placement diagnostics: a directive that
// is not a function declaration's doc comment fires wherever it sits
// (on a type, inside a body). These cannot use the // want harness
// because the directive line cannot carry a second comment.
func TestHotPathMisplaced(t *testing.T) {
	pkg := loadTestPkg(t, filepath.Join("testdata", "src", "hotpathbad"))
	diags, err := Run([]*Package{pkg}, []*Analyzer{HotPath})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "must be part of a function declaration's doc comment") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestHotpathFuncs pins the region extraction the -escapes driver
// depends on: names are receiver-qualified and line ranges span the
// whole body.
func TestHotpathFuncs(t *testing.T) {
	pkg := loadTestPkg(t, filepath.Join("testdata", "src", "hotpath"))
	var got []HotpathFunc
	for _, f := range pkg.Files {
		got = append(got, HotpathFuncs(pkg.Fset, f)...)
	}
	names := map[string]bool{}
	for _, h := range got {
		names[h.Name] = true
		if h.EndLine <= h.StartLine {
			t.Errorf("%s: degenerate range %d-%d", h.Name, h.StartLine, h.EndLine)
		}
		if !strings.HasSuffix(h.File, "hotpath.go") {
			t.Errorf("%s: unexpected file %s", h.Name, h.File)
		}
	}
	for _, want := range []string{"sum", "spawns", "maker", "slicemaker"} {
		if !names[want] {
			t.Errorf("annotated function %s not found (got %v)", want, names)
		}
	}
	if names["trailing"] {
		t.Errorf("malformed directive on trailing must not annotate it")
	}
}
