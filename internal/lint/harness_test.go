package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The analyzer tests are testdata-driven: each analyzer has a package
// under testdata/src/<name> whose lines carry // want "substr"
// annotations naming the diagnostics that must fire there. Any
// diagnostic without a matching want, or want without a matching
// diagnostic, fails the test.

var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

// sharedLoader reuses one Loader across tests so the source-importer's
// type-checked stdlib is paid for once.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

func loadTestPkg(t *testing.T, dir string) *Package {
	t.Helper()
	pkg, err := sharedLoader(t).LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(".+)$`)
	wantStrRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for file, src := range pkg.Sources {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := wantStrRe.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: malformed want annotation", file, i+1)
			}
			for _, q := range quoted {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", file, i+1, q, err)
				}
				wants = append(wants, &want{file: file, line: i + 1, substr: s})
			}
		}
	}
	return wants
}

func testAnalyzer(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg := loadTestPkg(t, filepath.Join("testdata", "src", name))
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wants := parseWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: missing diagnostic containing %q", w.file, w.line, w.substr)
		}
	}
}

func TestCtxCheck(t *testing.T)    { testAnalyzer(t, CtxCheck, "ctxcheck") }
func TestLedger(t *testing.T)      { testAnalyzer(t, Ledger, "ledger") }
func TestLockCheck(t *testing.T)   { testAnalyzer(t, LockCheck, "lockcheck") }
func TestMetricsName(t *testing.T) { testAnalyzer(t, MetricsName, "metricsname") }
func TestErrWrap(t *testing.T)     { testAnalyzer(t, ErrWrap, "errwrap") }
func TestPoolCheck(t *testing.T)   { testAnalyzer(t, PoolCheck, "poolcheck") }

func TestGoLeak(t *testing.T)    { testAnalyzer(t, GoLeak, "goleak") }
func TestSendBlock(t *testing.T) { testAnalyzer(t, SendBlock, "sendblock") }

// TestLedgerCFGEdges pins the CFG backend's path-sensitivity on shapes
// the old continuation walk could not follow: loops, labeled break,
// goto, select arms, switch without default.
func TestLedgerCFGEdges(t *testing.T) { testAnalyzer(t, Ledger, "cfgledger") }

// TestLoaderModuleImports checks the hybrid importer end to end: a real
// module package whose imports resolve partly against the module tree
// and partly against the stdlib source importer.
func TestLoaderModuleImports(t *testing.T) {
	pkg := loadTestPkg(t, filepath.Join("..", "obs"))
	if pkg.Types == nil || pkg.Types.Name() != "obs" {
		t.Fatalf("loaded package = %v, want obs", pkg.Types)
	}
	if _, err := Run([]*Package{pkg}, All()); err != nil {
		t.Fatalf("Run over internal/obs: %v", err)
	}
}
