package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath validates the `//v2v:hotpath` annotation grammar and catches
// the allocation hazards visible at the AST level. The annotation marks
// a function as belonging to the zero-allocation warm loop; the actual
// escape budget (0 heap escapes per annotated function) is enforced by
// the compiler-driven `v2vlint -escapes` mode (`make alloccheck`),
// which this analyzer complements:
//
//   - the directive must be exactly `//v2v:hotpath` and must be part of
//     a function declaration's doc comment — anywhere else it silently
//     guards nothing, so it is a finding;
//   - an annotated function must not spawn goroutines or make maps or
//     channels: those allocate by construction, no escape analysis
//     needed.
//
// Per-line escapes the compiler proves (a cold miss path, a panic
// message) carry //v2v:nolint(hotpath) with the reason; -escapes honors
// the same suppressions.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//v2v:hotpath annotations are well-formed and annotated functions avoid AST-visible allocations",
	Run:  runHotPath,
}

// hotpathDirective is the exact annotation line. HotpathFuncs (used by
// the -escapes driver) and this analyzer agree on the grammar through
// these helpers.
const hotpathDirective = "//v2v:hotpath"

// isHotpathLine reports whether a comment line is (or tries to be) the
// hotpath directive; exact reports whether it matches the grammar
// exactly.
func isHotpathLine(text string) (is, exact bool) {
	trimmed := strings.TrimRight(text, " \t")
	if trimmed == hotpathDirective {
		return true, true
	}
	return strings.HasPrefix(text, hotpathDirective), false
}

// HotpathFunc is a function annotated //v2v:hotpath, with the file line
// range the -escapes driver attributes compiler diagnostics to.
type HotpathFunc struct {
	Name      string // receiver-qualified, e.g. "(*PointOp).applyRow"
	File      string
	StartLine int
	EndLine   int
}

// HotpathFuncs returns the annotated functions of a parsed file (which
// must have been parsed with comments). It is the single source of
// truth for directive placement, shared by the analyzer and the
// -escapes driver in cmd/v2vlint.
func HotpathFuncs(fset *token.FileSet, f *ast.File) []HotpathFunc {
	var out []HotpathFunc
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if _, exact := isHotpathLine(c.Text); !exact {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				name = "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + name
			}
			start := fset.Position(fd.Pos())
			end := fset.Position(fd.Body.Rbrace)
			out = append(out, HotpathFunc{Name: name, File: start.Filename, StartLine: start.Line, EndLine: end.Line})
			break
		}
	}
	return out
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		// Comments that legitimately carry the directive: doc groups of
		// function declarations.
		docOf := map[*ast.Comment]*ast.FuncDecl{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docOf[c] = fd
			}
		}
		annotated := map[*ast.FuncDecl]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				is, exact := isHotpathLine(c.Text)
				if !is {
					continue
				}
				if !exact {
					pass.Reportf(c.Pos(), "malformed v2v:hotpath directive (write exactly //v2v:hotpath on its own line)")
					continue
				}
				fd, ok := docOf[c]
				if !ok {
					pass.Reportf(c.Pos(), "v2v:hotpath must be part of a function declaration's doc comment; here it guards nothing")
					continue
				}
				if fd.Body == nil {
					pass.Reportf(c.Pos(), "v2v:hotpath on a bodyless declaration guards nothing")
					continue
				}
				annotated[fd] = true
			}
		}
		for fd := range annotated {
			checkHotpathBody(pass, fd)
		}
	}
	return nil
}

// checkHotpathBody reports AST-visible allocation hazards inside an
// annotated function. Escape-analysis-level allocations (closures,
// interface conversions, growing appends) are left to -escapes.
func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hotpath function %s spawns a goroutine (allocation and a scheduler round-trip on the hot path)", fd.Name.Name)
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || id.Name != "make" || !isBuiltinOrUnresolved(pass.Info, id) {
				return true
			}
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "hotpath function %s makes a map (always heap-allocated)", fd.Name.Name)
			case *types.Chan:
				pass.Reportf(n.Pos(), "hotpath function %s makes a channel (always heap-allocated)", fd.Name.Name)
			}
		}
		return true
	})
}
