package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak requires every goroutine spawned in library code to be
// join-able or cancelable. A `go` statement passes when the spawned
// work — the function literal, a same-package function or method body,
// or a local closure — reaches at least one lifecycle signal:
//
//   - a ctx.Done()/ctx.Err() check, or a context.Context handed onward
//     to a call (delegating cancellation);
//   - a WaitGroup.Done (the spawner's Wait joins it);
//   - any channel operation — send, receive, close, range, or select —
//     which ties the goroutine's lifetime to a peer (a close or a
//     drained queue ends it; a send hands its result off).
//
// A goroutine with none of these runs until process exit with no way to
// stop or observe it — the leaked-worker shape that accumulates under
// long-lived servers and background maintenance. Package main is exempt
// (a binary owns its goroutines' lifetime); protocols the analysis
// cannot see (lifetime managed through a field, a foreign package, or a
// runtime.Gosched loop) carry //v2v:nolint(goleak) with the reason.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in library code reach a ctx.Done()/Err() check, a WaitGroup.Done, or a channel hand-off",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return nil // binaries own their goroutines' lifetime
	}
	g := &goleakChecker{pass: pass, decls: map[types.Object]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					g.decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		funcBodies(f, func(_ string, body *ast.BlockStmt) {
			closures := collectClosures(pass, body)
			inspectNoFuncLit(body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					g.checkGo(gs, closures)
				}
				return true
			})
		})
	}
	return nil
}

type goleakChecker struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
}

func (g *goleakChecker) checkGo(gs *ast.GoStmt, closures map[types.Object]*ast.FuncLit) {
	call := gs.Call
	// A context, channel, or WaitGroup argument hands the spawned
	// function its lifecycle signal even when the body is out of sight.
	for _, arg := range call.Args {
		if g.signalType(g.pass.Info.TypeOf(arg)) {
			return
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		if g.hasSignal(fun.Body) {
			return
		}
	case *ast.Ident:
		if obj := g.pass.Info.Uses[fun]; obj != nil {
			if lit := closures[obj]; lit != nil && g.hasSignal(lit.Body) {
				return
			}
			if fd := g.decls[obj]; fd != nil && g.hasSignal(fd.Body) {
				return
			}
		}
	case *ast.SelectorExpr:
		// Method value (s.run) or package-qualified call: resolvable only
		// same-package.
		if fn := methodOf(g.pass.Info, fun); fn != nil {
			if fd := g.decls[fn]; fd != nil && g.hasSignal(fd.Body) {
				return
			}
		}
		if g.signalType(g.pass.Info.TypeOf(fun.X)) {
			return // e.g. go ch.close-wrapper; receiver carries the signal
		}
	}
	g.pass.Reportf(gs.Pos(), "goroutine is not joinable or cancelable: no ctx.Done()/Err() check, WaitGroup.Done, or channel hand-off in sight (join it, plumb cancellation, or explain with //v2v:nolint(goleak))")
}

// signalType reports whether t can carry a goroutine lifecycle signal:
// a context, a channel, or a WaitGroup.
func (g *goleakChecker) signalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	obj := namedObjOf(t)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// hasSignal scans a spawned body — including its nested literals, which
// run as part of the same goroutine via defer or direct call — for any
// lifecycle signal.
func (g *goleakChecker) hasSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := g.pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && isBuiltinOrUnresolved(g.pass.Info, id) {
				found = true
				break
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				recv := g.pass.Info.TypeOf(sel.X)
				switch sel.Sel.Name {
				case "Done", "Err":
					if recv != nil && isContextType(recv) {
						found = true
					}
				}
				if sel.Sel.Name == "Done" && recv != nil {
					if obj := namedObjOf(recv); obj != nil && obj.Pkg() != nil &&
						obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
						found = true
					}
				}
			}
			for _, arg := range n.Args {
				if t := g.pass.Info.TypeOf(arg); t != nil && isContextType(t) {
					found = true // cancellation delegated to the callee
				}
			}
		}
		return true
	})
	return found
}
