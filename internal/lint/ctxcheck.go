package lint

import (
	"go/ast"
	"go/types"
)

// CtxCheck enforces the repo's context discipline: an exported function
// that accepts a context.Context must actually consult it — a dropped
// or blank ctx parameter means cancellation silently stops propagating,
// which is exactly the bug class the shard workers and cache fills were
// built to avoid. It also forbids minting fresh roots with
// context.Background()/TODO() in library packages: only main packages
// (and explicitly justified compat shims) may start a new context tree.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "exported functions taking context.Context must use it; no context.Background/TODO in library code",
	Run:  runCtxCheck,
}

func isContextType(t types.Type) bool {
	obj := namedObjOf(t)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func runCtxCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				if !isContextType(pass.Info.TypeOf(field.Type)) {
					continue
				}
				if len(field.Names) == 0 {
					pass.Reportf(field.Pos(), "exported function %s discards its context.Context parameter", fd.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if name.Name == "_" {
						pass.Reportf(name.Pos(), "exported function %s discards its context.Context parameter", fd.Name.Name)
						continue
					}
					obj := pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					if !identUsed(pass.Info, fd.Body, obj) {
						pass.Reportf(name.Pos(), "exported function %s never uses its context.Context parameter %s", fd.Name.Name, name.Name)
					}
				}
			}
		}
		// Fresh context roots belong to main packages; a library minting
		// one detaches its callees from the caller's cancellation.
		if pass.Pkg.Name() == "main" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range [...]string{"Background", "TODO"} {
				if calleeIsPkgFunc(pass.Info, call, "context", fn) {
					pass.Reportf(call.Pos(), "context.%s() in library code severs cancellation; accept a ctx from the caller", fn)
				}
			}
			return true
		})
	}
	return nil
}

// identUsed reports whether obj is referenced anywhere in body,
// including inside nested function literals (a closure capturing ctx
// counts as consulting it).
func identUsed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
