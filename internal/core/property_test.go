package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"v2v/internal/rational"
)

// TestPropertyRandomSpecsEquivalent generates random multi-arm specs over
// the fixture videos and asserts that the optimized pipeline (with data
// rewriting) produces pixel-identical output to the unoptimized plan —
// the system-level correctness invariant behind every optimization.
func TestPropertyRandomSpecsEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rnd := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		src := randomSpec(rnd)
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			dir := t.TempDir()
			u, err := SynthesizeSource(src, filepath.Join(dir, "u.vmf"), Options{})
			if err != nil {
				t.Fatalf("unopt: %v\nspec:\n%s", err, src)
			}
			o, err := SynthesizeSource(src, filepath.Join(dir, "o.vmf"), Options{
				Optimize: true, DataRewrite: true, Parallelism: 3,
			})
			if err != nil {
				t.Fatalf("opt: %v\nspec:\n%s", err, src)
			}
			fu, fo := readFrames(t, u.OutPath), readFrames(t, o.OutPath)
			if len(fu) != len(fo) {
				t.Fatalf("frame counts %d vs %d\nspec:\n%s", len(fu), len(fo), src)
			}
			for i := range fu {
				if !fu[i].Equal(fo[i]) {
					t.Fatalf("frame %d differs\nspec:\n%s", i, src)
				}
			}
		})
	}
}

// randomSpec builds a random but always-valid spec: 1-4 arms over a
// domain of up to 3 seconds at 24 fps, each arm one of the benchmark
// expression shapes with random in-range offsets.
func randomSpec(rnd *rand.Rand) string {
	arms := 1 + rnd.Intn(3)
	armLenFrames := 12 + 12*rnd.Intn(3) // 0.5 .. 1.5 s
	step := rational.New(1, 24)

	// Fixture videos are 6 s long; constrain source reads to [0, 5.5].
	maxStartFrame := int64(6*24) - int64(armLenFrames) - 12
	randOffset := func(armStartFrame int64) string {
		src := rnd.Int63n(maxStartFrame)
		// shift = srcStart - armStart, in frames over 24.
		return rational.New(src-armStartFrame, 24).String()
	}

	exprs := []func(v string, off string) string{
		func(v, off string) string { return fmt.Sprintf("%s[t + %s]", v, off) },
		func(v, off string) string { return fmt.Sprintf("zoom(%s[t + %s], 2)", v, off) },
		func(v, off string) string { return fmt.Sprintf("grade(%s[t + %s], 10, 1.1, 0.9)", v, off) },
		func(v, off string) string { return fmt.Sprintf("boxes(%s[t + %s], bb[t + %s])", v, off, off) },
		func(v, off string) string {
			return fmt.Sprintf("grid(%s[t + %s], w[t + %s], v[t + %s], w[t + %s])", v, off, off, off, off)
		},
		func(v, off string) string {
			return fmt.Sprintf("if count(bb[t + %s]) > 0 then zoom(%s[t + %s], 2) else %s[t + %s]", off, v, off, v, off)
		},
	}

	var sb strings.Builder
	totalFrames := int64(arms * armLenFrames)
	fmt.Fprintf(&sb, "timedomain range(0, %s, %s);\n", rational.New(totalFrames, 24), step)
	fmt.Fprintf(&sb, "videos { v: %q; w: %q; }\n", fxVid, fxVid2)
	fmt.Fprintf(&sb, "data { bb: %q; }\n", fxAnn)
	sb.WriteString("render(t) = match t {\n")
	for a := 0; a < arms; a++ {
		lo := int64(a * armLenFrames)
		hi := int64((a + 1) * armLenFrames)
		vname := "v"
		if rnd.Intn(2) == 0 {
			vname = "w"
		}
		off := randOffset(lo)
		// boxes/ifthenelse arms need bb coverage: annotations exist only
		// for v's span (same timeline), which randOffset guarantees.
		body := exprs[rnd.Intn(len(exprs))](vname, off)
		fmt.Fprintf(&sb, "  t in range(%s, %s, %s) => %s,\n",
			rational.New(lo, 24), rational.New(hi, 24), step, body)
	}
	sb.WriteString("};\n")
	return sb.String()
}
