// Package core is the V2V system façade: it wires the paper's pipeline —
// data-aware rewriting (§IV-C), checking (§III-B), planning (§III-C),
// heuristic optimization (§III-D), and execution (§IV-A) — behind one
// Synthesize call, with every stage independently toggleable so the
// evaluation harness can run unoptimized, optimized, and ablated
// configurations of the same spec.
package core

import (
	"context"
	"fmt"
	"io"

	"v2v/internal/check"
	"v2v/internal/exec"
	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/opt"
	"v2v/internal/plan"
	"v2v/internal/rational"
	"v2v/internal/rewrite"
	"v2v/internal/sqlmini"
	"v2v/internal/vql"
)

// Options configures a synthesis run.
type Options struct {
	// Optimize runs the heuristic plan optimizer. Off reproduces the
	// paper's "unoptimized" bars.
	Optimize bool
	// DataRewrite runs the data-dependent spec rewriter before planning.
	DataRewrite bool
	// OptPasses overrides the optimizer pass selection (nil = all passes
	// when Optimize is set). Used by the ablation benchmarks.
	OptPasses *opt.Options
	// Parallelism caps shard fan-out (0 = GOMAXPROCS).
	Parallelism int
	// DB provides tables for sql-declared data arrays.
	DB *sqlmini.DB
	// Conceal switches execution from fail-fast to error-concealment mode:
	// corrupt or undecodable source packets are replaced by holding the
	// last good frame instead of failing the synthesis. See exec.Options.
	Conceal bool
	// GOPCache, when non-nil, is a shared decoded-GOP cache the executor
	// reads sources through; share one cache across runs to reuse decodes
	// between them. Nil disables caching. See exec.Options.GOPCache.
	GOPCache *media.GOPCache
	// ResultCache, when non-nil, memoizes rendered segments' encoded
	// output across runs, keyed by canonical plan fingerprint + source
	// content identity: a repeated or overlapping query splices cached
	// packets instead of rendering. Share one cache across runs. Nil
	// disables result caching. See exec.Options.ResultCache.
	ResultCache *media.ResultCache
	// Trace, when set, records one span per pipeline stage (parse, check,
	// rewrite, optimize, execute), per optimizer pass, per segment, and
	// per shard worker. Export it with obs.Trace.WriteJSON.
	Trace *obs.Trace
	// Recorder, when set, attributes per-stage (decode/filter/encode/
	// copy) frames, bytes, and wall time to this run — v2vserve threads
	// each request's flight-recorder entry here. See exec.Options.Recorder.
	Recorder *obs.Recorder
	// Streaming schedules multi-segment plans strictly in presentation
	// order, delivering each segment's packets as it completes while later
	// segments render concurrently. Output bytes are identical to a
	// non-streaming run; only delivery timing changes. See
	// exec.Options.Streaming.
	Streaming bool
	// OnSegmentDone, when set, is called with -1 after the container
	// header is written and then with each segment index after that
	// segment's packets reach the sink — the flush hook streaming
	// consumers use to push bytes at segment boundaries. See
	// exec.Options.OnSegmentDone.
	OnSegmentDone func(segment int)
}

// DefaultOptions enables the full V2V pipeline.
func DefaultOptions() Options {
	return Options{Optimize: true, DataRewrite: true}
}

// Result reports everything a synthesis run produced.
type Result struct {
	OutPath      string
	Plan         *plan.Plan
	Metrics      *exec.Metrics
	RewriteStats rewrite.Stats
	OptStats     opt.Stats
}

// Plan validates the spec and produces the (optionally rewritten and
// optimized) execution plan without running it — the EXPLAIN entry point.
func Plan(spec *vql.Spec, o Options) (*plan.Plan, rewrite.Stats, opt.Stats, error) {
	var rStats rewrite.Stats
	var oStats opt.Stats

	sp := o.Trace.StartSpan("check")
	checked, err := check.Check(spec, check.Options{DB: o.DB})
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, rStats, oStats, err
	}
	sp.SetAttr("videos", len(checked.Sources))
	sp.SetAttr("arrays", len(checked.Arrays))
	sp.SetAttr("passthrough", checked.Passthrough)
	sp.End()
	if o.DataRewrite {
		sp := o.Trace.StartSpan("rewrite")
		rewritten, stats, err := rewrite.Rewrite(checked)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return nil, rStats, oStats, fmt.Errorf("core: data rewrite: %w", err)
		}
		rStats = stats
		sp.SetAttr("skipped", stats.Skipped)
		sp.SetAttr("times_evaluated", stats.TimesEvaluated)
		sp.SetAttr("arms_before", stats.ArmsBefore)
		sp.SetAttr("arms_after", stats.ArmsAfter)
		for name, n := range stats.Applied {
			// One attribute per data-dependent rewrite that fired.
			sp.SetAttr("applied."+name, n)
		}
		sp.End()
		if rewritten != checked.Spec {
			// The rewritten spec references the same sources and arrays
			// (its dependencies are a subset of the validated originals),
			// so the checked context carries over with the new render.
			c2 := *checked
			c2.Spec = rewritten
			checked = &c2
		}
	}
	sp = o.Trace.StartSpan("plan")
	p, err := plan.Build(checked)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, rStats, oStats, err
	}
	sp.SetAttr("segments", len(p.Segments))
	sp.End()
	if o.Optimize {
		sp := o.Trace.StartSpan("optimize")
		passes := opt.Default()
		if o.OptPasses != nil {
			passes = *o.OptPasses
		}
		passes.Parallelism = o.Parallelism
		passes.Trace = o.Trace
		stats, err := opt.Optimize(p, passes)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return nil, rStats, oStats, fmt.Errorf("core: optimize: %w", err)
		}
		oStats = stats
		sp.SetAttr("segments_merged", stats.SegmentsMerged)
		sp.SetAttr("filters_merged", stats.FiltersMerged)
		sp.SetAttr("copies", stats.Copies)
		sp.SetAttr("smart_cuts", stats.SmartCuts)
		sp.SetAttr("sharded_segments", stats.ShardedSegs)
		sp.End()
	}
	return p, rStats, oStats, nil
}

// Prepared is a planned-but-not-yet-executed synthesis: the output of the
// front half of the pipeline (check, rewrite, plan, optimize), carrying
// the plan's cost estimate. v2vserve plans every request before admission
// so the admission controller can weigh it by estimated cost, then
// executes the prepared plan once admitted — without re-running the
// planner.
type Prepared struct {
	Plan         *plan.Plan
	RewriteStats rewrite.Stats
	OptStats     opt.Stats
}

// EstimatedCost returns the prepared plan's total static cost estimate.
func (pr *Prepared) EstimatedCost() plan.Cost { return pr.Plan.EstimatedCost() }

// Prepare runs the pipeline front half: validate, rewrite, plan,
// optimize. The returned Prepared can be executed once.
func Prepare(spec *vql.Spec, o Options) (*Prepared, error) {
	p, rStats, oStats, err := Plan(spec, o)
	if err != nil {
		return nil, err
	}
	return &Prepared{Plan: p, RewriteStats: rStats, OptStats: oStats}, nil
}

// SynthesizeStreamContext executes the prepared plan, delivering the
// result progressively to w in the VMS stream format (see the package
// SynthesizeStreamContext). The executor-facing options (caches, trace,
// recorder, parallelism, concealment) are read from o; planning options
// were already consumed by Prepare.
func (pr *Prepared) SynthesizeStreamContext(ctx context.Context, w io.Writer, o Options) (*Result, error) {
	info := pr.Plan.Checked.Output
	info.Start = rational.Zero
	sink, err := media.NewStreamWriter(w, info)
	if err != nil {
		return nil, err
	}
	metrics, err := exec.ExecuteTo(ctx, pr.Plan, sink, execOptions(o))
	if err != nil {
		return nil, err
	}
	return &Result{
		Plan:         pr.Plan,
		Metrics:      metrics,
		RewriteStats: pr.RewriteStats,
		OptStats:     pr.OptStats,
	}, nil
}

// execOptions translates core options to executor options.
func execOptions(o Options) exec.Options {
	return exec.Options{
		Parallelism: o.Parallelism, Conceal: o.Conceal,
		GOPCache: o.GOPCache, ResultCache: o.ResultCache, Trace: o.Trace,
		Recorder: o.Recorder,
		Streaming: o.Streaming, OnSegmentDone: o.OnSegmentDone,
	}
}

// Synthesize runs the full pipeline and writes the result video to
// outPath.
func Synthesize(spec *vql.Spec, outPath string, o Options) (*Result, error) {
	//v2v:nolint(ctxcheck) context-free compat wrapper; callers wanting cancellation use SynthesizeContext
	return SynthesizeContext(context.Background(), spec, outPath, o)
}

// SynthesizeContext is Synthesize with cooperative cancellation: the
// executor checks ctx before every segment and at every GOP boundary. A
// cancelled run returns ctx.Err() and leaves nothing at outPath.
func SynthesizeContext(ctx context.Context, spec *vql.Spec, outPath string, o Options) (*Result, error) {
	p, rStats, oStats, err := Plan(spec, o)
	if err != nil {
		return nil, err
	}
	metrics, err := exec.Execute(ctx, p, outPath, execOptions(o))
	if err != nil {
		return nil, err
	}
	return &Result{
		OutPath:      outPath,
		Plan:         p,
		Metrics:      metrics,
		RewriteStats: rStats,
		OptStats:     oStats,
	}, nil
}

// SynthesizeSource parses the textual spec grammar and synthesizes it.
func SynthesizeSource(src, outPath string, o Options) (*Result, error) {
	//v2v:nolint(ctxcheck) context-free compat wrapper; callers wanting cancellation use SynthesizeSourceContext
	return SynthesizeSourceContext(context.Background(), src, outPath, o)
}

// SynthesizeSourceContext is SynthesizeSource with cooperative
// cancellation; see SynthesizeContext.
func SynthesizeSourceContext(ctx context.Context, src, outPath string, o Options) (*Result, error) {
	sp := o.Trace.StartSpan("parse")
	spec, err := vql.Parse(src)
	sp.End()
	if err != nil {
		return nil, err
	}
	return SynthesizeContext(ctx, spec, outPath, o)
}

// SynthesizeStream runs the pipeline and delivers the result progressively
// to w in the VMS stream format: packets flow as segments complete, so a
// consumer can begin playback while later segments are still rendering —
// the paper's "begin playback within seconds" property. The result's
// Metrics.FirstOutput records the latency to the first packet.
func SynthesizeStream(spec *vql.Spec, w io.Writer, o Options) (*Result, error) {
	//v2v:nolint(ctxcheck) context-free compat wrapper; callers wanting cancellation use SynthesizeStreamContext
	return SynthesizeStreamContext(context.Background(), spec, w, o)
}

// SynthesizeStreamContext is SynthesizeStream with cooperative
// cancellation. A cancelled run stops without the end-of-stream marker,
// so consumers observe truncation rather than a spuriously clean end.
func SynthesizeStreamContext(ctx context.Context, spec *vql.Spec, w io.Writer, o Options) (*Result, error) {
	pr, err := Prepare(spec, o)
	if err != nil {
		return nil, err
	}
	return pr.SynthesizeStreamContext(ctx, w, o)
}
