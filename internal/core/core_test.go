package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"v2v/internal/dataset"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/opt"
	"v2v/internal/plan"
	"v2v/internal/rational"
	"v2v/internal/sqlmini"
	"v2v/internal/vql"
)

var (
	fxDir    string
	fxVid    string // tiny: 24fps, GOP 1s
	fxVid2   string
	fxSparse string // GOP 10s
	fxAnn    string // annotations for fxVid
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "v2v-core-")
	if err != nil {
		panic(err)
	}
	fxDir = dir
	p := dataset.TinyProfile()
	fxVid = filepath.Join(dir, "a.vmf")
	fxAnn = filepath.Join(dir, "a.boxes.json")
	if _, err := dataset.Generate(fxVid, fxAnn, p, rational.FromInt(6)); err != nil {
		panic(err)
	}
	p2 := p
	p2.Seed = 77
	fxVid2 = filepath.Join(dir, "b.vmf")
	if _, err := dataset.Generate(fxVid2, "", p2, rational.FromInt(6)); err != nil {
		panic(err)
	}
	sp := p
	sp.GOPSeconds = rational.FromInt(10)
	fxSparse = filepath.Join(dir, "sparse.vmf")
	if _, err := dataset.Generate(fxSparse, "", sp, rational.FromInt(6)); err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func specSrc(body string) string {
	return fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; w: %q; s: %q; }
		data { bb: %q; }
		%s`, fxVid, fxVid2, fxSparse, fxAnn, body)
}

// readFrames decodes all frames of a VMF file.
func readFrames(t *testing.T, path string) []*frame.Frame {
	t.Helper()
	r, err := media.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out := make([]*frame.Frame, r.NumFrames())
	for i := range out {
		fr, err := r.FrameAtIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = fr.Clone()
	}
	return out
}

// stamps extracts the frame-ID of every frame.
func stamps(t *testing.T, frames []*frame.Frame) []uint32 {
	t.Helper()
	out := make([]uint32, len(frames))
	for i, fr := range frames {
		id, ok := frame.ReadStamp(fr)
		if !ok {
			t.Fatalf("frame %d carries no stamp", i)
		}
		out[i] = id
	}
	return out
}

// synth runs the pipeline on src with the given options.
func synth(t *testing.T, src, name string, o Options) *Result {
	t.Helper()
	out := filepath.Join(t.TempDir(), name)
	res, err := SynthesizeSource(src, out, o)
	if err != nil {
		t.Fatalf("synthesize %s: %v", name, err)
	}
	return res
}

// assertEquivalent synthesizes src unoptimized and optimized and verifies
// both outputs are pixel-identical (the codec is lossless at Q=1).
func assertEquivalent(t *testing.T, src string) (unopt, opted *Result) {
	t.Helper()
	u := synth(t, src, "unopt.vmf", Options{})
	o := synth(t, src, "opt.vmf", DefaultOptions())
	fu := readFrames(t, u.OutPath)
	fo := readFrames(t, o.OutPath)
	if len(fu) != len(fo) {
		t.Fatalf("frame counts: unopt %d vs opt %d", len(fu), len(fo))
	}
	for i := range fu {
		if !fu[i].Equal(fo[i]) {
			t.Fatalf("frame %d differs between unoptimized and optimized plans", i)
		}
	}
	return u, o
}

func TestQ1StyleClipEquivalence(t *testing.T) {
	// Clip 1 second starting at t=1 (keyframe-aligned in v).
	src := specSrc(`render(t) = v[t + 1];`)
	u, o := assertEquivalent(t, src)
	got := stamps(t, readFrames(t, o.OutPath))
	for i, id := range got {
		if id != uint32(24+i) {
			t.Fatalf("frame %d stamp = %d, want %d", i, id, 24+i)
		}
	}
	// The optimized plan must be a pure copy: zero encodes, zero decodes.
	if o.Metrics.TotalEncodes() != 0 || o.Metrics.TotalDecodes() != 0 {
		t.Errorf("optimized clip did work: enc=%d dec=%d", o.Metrics.TotalEncodes(), o.Metrics.TotalDecodes())
	}
	if o.Metrics.Output.PacketsCopied != 48 {
		t.Errorf("copied = %d", o.Metrics.Output.PacketsCopied)
	}
	// The unoptimized plan decodes and encodes everything.
	if u.Metrics.TotalEncodes() == 0 || u.Metrics.TotalDecodes() == 0 {
		t.Error("unoptimized plan should decode and encode")
	}
}

func TestSmartCutEquivalence(t *testing.T) {
	// Mid-GOP clip: smart cut re-encodes only the head.
	src := specSrc(`render(t) = v[t + 31/24];`)
	_, o := assertEquivalent(t, src)
	got := stamps(t, readFrames(t, o.OutPath))
	for i, id := range got {
		if id != uint32(31+i) {
			t.Fatalf("frame %d stamp = %d, want %d", i, id, 31+i)
		}
	}
	// Head is frames 31..47 (17 frames) until keyframe 48.
	if enc := o.Metrics.TotalEncodes(); enc != 17 {
		t.Errorf("smart cut encodes = %d, want 17", enc)
	}
	if o.Metrics.Output.PacketsCopied != 48-17 {
		t.Errorf("copied = %d, want 31", o.Metrics.Output.PacketsCopied)
	}
}

func TestSparseKeyframesFallBack(t *testing.T) {
	// Q1-on-ToS: no keyframes in range, optimized == unoptimized plan
	// shape (both render).
	src := specSrc(`render(t) = s[t + 1/24];`)
	u, o := assertEquivalent(t, src)
	if o.Plan.Segments[0].Kind != plan.SegFrames {
		t.Error("sparse source should stay a render segment")
	}
	// Both plans decode the same source volume.
	if u.Metrics.Source.FramesDecoded != o.Metrics.Source.FramesDecoded {
		t.Errorf("decodes differ: %d vs %d", u.Metrics.Source.FramesDecoded, o.Metrics.Source.FramesDecoded)
	}
}

func TestQ2StyleSpliceEquivalence(t *testing.T) {
	// Splice 4 half-second clips, all keyframe-aligned.
	src := specSrc(`render(t) = match t {
		t in range(0, 1/2, 1/24) => v[t + 1],
		t in range(1/2, 1, 1/24) => w[t - 1/2],
		t in range(1, 3/2, 1/24) => v[t + 2],
		t in range(3/2, 2, 1/24) => w[t + 1/2],
	};`)
	_, o := assertEquivalent(t, src)
	got := stamps(t, readFrames(t, o.OutPath))
	want := make([]uint32, 0, 96)
	for i := 0; i < 12; i++ {
		want = append(want, uint32(24+i))
	}
	for i := 0; i < 12; i++ {
		want = append(want, uint32(i))
	}
	for i := 0; i < 12; i++ {
		want = append(want, uint32(72+i))
	}
	for i := 0; i < 12; i++ {
		want = append(want, uint32(48+i))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d stamp = %d, want %d", i, got[i], want[i])
		}
	}
	// Half-second clips start at keyframes every second only for the
	// integer-second offsets; others smart-cut. Either way copies happen.
	if o.Metrics.Output.PacketsCopied == 0 {
		t.Error("optimized splice should copy packets")
	}
}

func TestQ3StyleGridEquivalence(t *testing.T) {
	src := specSrc(`render(t) = grid(v[t], w[t], v[t + 1], w[t + 1]);`)
	u, o := assertEquivalent(t, src)
	// Optimized plan avoids the intermediate materializations.
	if o.Metrics.Intermediate.FramesEncoded != 0 {
		t.Errorf("optimized grid materialized %d frames", o.Metrics.Intermediate.FramesEncoded)
	}
	if u.Metrics.Intermediate.FramesEncoded == 0 {
		t.Error("unoptimized grid should materialize operator boundaries")
	}
}

func TestQ4StyleBlurEquivalence(t *testing.T) {
	src := specSrc(`render(t) = blur(v[t], 1.2);`)
	assertEquivalent(t, src)
}

// TestFusedPointOpChainEquivalence exercises the optimizer's kernel-fusion
// pass end to end: a chain of fusable point ops (crossfade -> wipe ->
// grade, with secondary-frame inputs) must fuse into a single kernel node
// and still be pixel-identical to the unoptimized run.
func TestFusedPointOpChainEquivalence(t *testing.T) {
	src := specSrc(`render(t) = grade(wipe(crossfade(v[t], w[t], 2/5), w[t], 3/5), -8, 12/10, 9/10);`)
	_, o := assertEquivalent(t, src)
	fused := false
	for _, s := range o.Plan.Segments {
		if s.Kind != plan.SegFrames || s.Root == nil {
			continue
		}
		s.Root.Walk(func(n *plan.Node) {
			if n.Fused != nil {
				fused = true
			}
		})
	}
	if !fused {
		t.Error("optimized plan contains no fused kernel node")
	}
}

// TestFusedChainInsideNonFusableOpEquivalence checks fusion of a chain
// hoisted out of a non-fusable enclosing transform (the chain feeds grid).
func TestFusedChainInsideNonFusableOpEquivalence(t *testing.T) {
	src := specSrc(`render(t) = grid(grade(grade(v[t], 10, 11/10, 1), -5, 9/10, 12/10), w[t], v[t + 1], w[t + 1]);`)
	assertEquivalent(t, src)
}

func TestQ5StyleBoxesEquivalence(t *testing.T) {
	src := specSrc(`render(t) = boxes(v[t], bb[t]);`)
	u := synth(t, src, "unopt.vmf", Options{})
	o := synth(t, src, "opt.vmf", DefaultOptions())
	fu, fo := readFrames(t, u.OutPath), readFrames(t, o.OutPath)
	if len(fu) != len(fo) {
		t.Fatalf("frame counts differ")
	}
	for i := range fu {
		if !fu[i].Equal(fo[i]) {
			t.Fatalf("frame %d differs (data-aware rewrite broke equivalence)", i)
		}
	}
	// The tiny profile has objects on half the frames; the rewrite should
	// have split arms and enabled copies on the object-free stretches.
	if o.RewriteStats.Skipped || o.RewriteStats.ArmsAfter < 2 {
		t.Errorf("rewrite stats = %+v", o.RewriteStats)
	}
	if o.Metrics.Output.PacketsCopied == 0 {
		t.Error("object-free stretches should stream-copy")
	}
	// Without the data rewrite, no copies are possible (boxes() wraps
	// every frame).
	oNoRewrite := synth(t, src, "opt-norewrite.vmf", Options{Optimize: true})
	if oNoRewrite.Metrics.Output.PacketsCopied != 0 {
		t.Error("without data rewrite there should be no copies")
	}
}

func TestIfThenElseDataRewriteEndToEnd(t *testing.T) {
	// Paper §IV-C shape: condition from SQL data selects between videos.
	db := sqlmini.NewDB()
	db.CreateTable("sel", []sqlmini.Column{
		{Name: "ts", Type: sqlmini.TypeRat},
		{Name: "usea", Type: sqlmini.TypeBool},
	})
	for i := 0; i < 48; i++ {
		db.Insert("sel", []sqlmini.Cell{
			sqlmini.RatCell(rational.New(int64(i), 24)),
			sqlmini.BoolCell(i < 24),
		})
	}
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; w: %q; }
		sql { usea: "SELECT ts, usea FROM sel"; }
		render(t) = ifthenelse(usea[t], v[t], w[t]);`, fxVid, fxVid2)
	o := synth(t, src, "ite.vmf", Options{Optimize: true, DataRewrite: true, DB: db})
	// Both halves are plain clips post-rewrite -> all 48 frames copy
	// (first second from v, second second from w, both keyframe-aligned).
	if o.Metrics.Output.PacketsCopied != 48 {
		t.Errorf("copied = %d, want 48", o.Metrics.Output.PacketsCopied)
	}
	got := stamps(t, readFrames(t, o.OutPath))
	if len(got) != 48 {
		t.Fatalf("frames = %d, want 48", len(got))
	}
	for i := 0; i < 48; i++ {
		if got[i] != uint32(i) {
			t.Fatalf("frame %d stamp = %d, want %d", i, got[i], i)
		}
	}
	// Equivalence against the unrewritten, unoptimized run.
	u := synth(t, src, "ite-unopt.vmf", Options{DB: db})
	fu, fo := readFrames(t, u.OutPath), readFrames(t, o.OutPath)
	for i := range fu {
		if !fu[i].Equal(fo[i]) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestExplicitOutputScales(t *testing.T) {
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; }
		output { width: 64; height: 48; fps: 24; }
		render(t) = v[t];`, fxVid)
	o := synth(t, src, "scaled.vmf", DefaultOptions())
	r, err := media.OpenReader(o.OutPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Info().Width != 64 || r.Info().Height != 48 {
		t.Errorf("output dims = %dx%d", r.Info().Width, r.Info().Height)
	}
	if r.NumFrames() != 24 {
		t.Errorf("frames = %d", r.NumFrames())
	}
	if o.Metrics.Output.PacketsCopied != 0 {
		t.Error("scaled output cannot copy packets")
	}
}

func TestParallelShardsMatchSequential(t *testing.T) {
	src := specSrc(`render(t) = blur(v[t], 1.0);`)
	seq := synth(t, src, "seq.vmf", Options{Optimize: true, Parallelism: 1})
	par := synth(t, src, "par.vmf", Options{Optimize: true, Parallelism: 4})
	fs, fp := readFrames(t, seq.OutPath), readFrames(t, par.OutPath)
	if len(fs) != len(fp) {
		t.Fatalf("counts differ: %d vs %d", len(fs), len(fp))
	}
	for i := range fs {
		if !fs[i].Equal(fp[i]) {
			t.Fatalf("frame %d differs between sequential and parallel execution", i)
		}
	}
}

func TestAblationPassCombinations(t *testing.T) {
	// Every single-pass configuration must still produce correct output.
	src := specSrc(`render(t) = match t {
		t in range(0, 1, 1/24) => v[t + 1],
		t in range(1, 2, 1/24) => blur(zoom(w[t - 1], 2), 1.0),
	};`)
	ref := synth(t, src, "ref.vmf", Options{})
	refFrames := readFrames(t, ref.OutPath)
	passSets := map[string]opt.Options{
		"copy-only":  {StreamCopy: true},
		"smart-only": {SmartCut: true},
		"merge-only": {MergeFilters: true},
		"shard-only": {Shard: true},
		"seg-only":   {MergeSegments: true},
	}
	for name, passes := range passSets {
		passes := passes
		res := synth(t, src, name+".vmf", Options{Optimize: true, OptPasses: &passes})
		got := readFrames(t, res.OutPath)
		if len(got) != len(refFrames) {
			t.Fatalf("%s: counts differ", name)
		}
		for i := range got {
			if !got[i].Equal(refFrames[i]) {
				t.Fatalf("%s: frame %d differs", name, i)
			}
		}
	}
}

func TestPlanOnlyEntryPoint(t *testing.T) {
	s, err := vql.Parse(specSrc(`render(t) = v[t + 1];`))
	if err != nil {
		t.Fatal(err)
	}
	p, _, oStats, err := Plan(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Optimized || oStats.Copies != 1 {
		t.Errorf("plan = optimized %v, stats %+v", p.Optimized, oStats)
	}
	if p.Explain() == "" || p.DOT() == "" {
		t.Error("explain output empty")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := SynthesizeSource("not a spec", "/tmp/x.vmf", Options{}); err == nil {
		t.Error("bad source should fail")
	}
	src := specSrc(`render(t) = v[t + 100];`) // out of range
	if _, err := SynthesizeSource(src, filepath.Join(t.TempDir(), "x.vmf"), Options{}); err == nil {
		t.Error("failing check should fail")
	}
}

func TestFig2PlanShapes(t *testing.T) {
	// The paper's Fig. 2 spec: a simple clip spliced with a 2x2 grid
	// spliced with a simple filter (specs Q1, Q3, Q4). The optimized plan
	// applies a smart cut to the clip, pulls clips into the grid filter,
	// and shards the last filter.
	src := fmt.Sprintf(`
	timedomain range(0, 4, 1/24);
	videos { v: %q; w: %q; }
	render(t) = match t {
		t in range(0, 1, 1/24) => v[t + 31/24],
		t in range(1, 2, 1/24) => grid(v[t], w[t], v[t + 1], w[t + 1]),
		t in range(2, 4, 1/24) => blur(v[t], 1.0),
	};`, fxVid, fxVid2)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	unopt, _, _, err := Plan(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(unopt.Segments) != 3 {
		t.Fatalf("unopt segments = %d", len(unopt.Segments))
	}
	for _, seg := range unopt.Segments {
		if seg.Kind != plan.SegFrames {
			t.Error("unoptimized plan must render everything")
		}
	}
	opted, _, _, err := Plan(s, Options{Optimize: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if opted.Segments[0].Kind != plan.SegSmartCut {
		t.Errorf("segment 0 = %v, want smartcut", opted.Segments[0].Kind)
	}
	if opted.Segments[1].Kind != plan.SegFrames || opted.Segments[1].Root.CountOps() != 1 {
		t.Error("grid should merge into one filter")
	}
	if opted.Segments[2].Shards < 2 {
		t.Errorf("filter segment shards = %d, want parallel split", opted.Segments[2].Shards)
	}
}
