package core

import (
	"bytes"
	"io"
	"testing"

	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/vql"
)

func TestSynthesizeStreamMatchesFile(t *testing.T) {
	src := specSrc(`render(t) = match t {
		t in range(0, 1, 1/24) => v[t + 1],
		t in range(1, 2, 1/24) => zoom(w[t], 2),
	};`)
	spec, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}

	// File path.
	fileRes := synth(t, src, "file.vmf", DefaultOptions())
	fileFrames := readFrames(t, fileRes.OutPath)

	// Stream path.
	var buf bytes.Buffer
	streamRes, err := SynthesizeStream(spec, &buf, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sr, err := media.NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var streamFrames []*frame.Frame
	for {
		fr, err := sr.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		streamFrames = append(streamFrames, fr)
	}
	if len(streamFrames) != len(fileFrames) {
		t.Fatalf("stream %d frames vs file %d", len(streamFrames), len(fileFrames))
	}
	for i := range fileFrames {
		if !fileFrames[i].Equal(streamFrames[i]) {
			t.Fatalf("frame %d differs between file and stream outputs", i)
		}
	}
	// First output arrives strictly before the run completes, and for a
	// copy-led plan essentially immediately.
	m := streamRes.Metrics
	if m.FirstOutput <= 0 || m.FirstOutput > m.Wall {
		t.Errorf("first output %v, wall %v", m.FirstOutput, m.Wall)
	}
}

func TestFirstOutputLatencyCopyVsRender(t *testing.T) {
	// A copy-led spec delivers its first packet far sooner than the same
	// duration of rendering — the interactivity claim.
	copySrc := specSrc(`render(t) = v[t + 1];`)
	renderSrc := specSrc(`render(t) = blur(v[t + 1], 1.5);`)
	var bufA, bufB bytes.Buffer
	specA, _ := vql.Parse(copySrc)
	specB, _ := vql.Parse(renderSrc)
	a, err := SynthesizeStream(specA, &bufA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeStream(specB, &bufB, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.FirstOutput >= b.Metrics.Wall {
		t.Errorf("copy first-output %v should beat full render wall %v",
			a.Metrics.FirstOutput, b.Metrics.Wall)
	}
}

func TestSynthesizeStreamErrors(t *testing.T) {
	spec, err := vql.Parse(specSrc(`render(t) = v[t + 100];`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := SynthesizeStream(spec, &buf, DefaultOptions()); err == nil {
		t.Error("failing check should propagate")
	}
}
