package core

import (
	"fmt"
	"testing"
)

// Time remapping needs no dedicated operators: any index expression over t
// works, with dependency analysis falling back to per-sample enumeration.

func TestReversePlayback(t *testing.T) {
	// render(t) = v[2 - 1/24 - t]: the first two seconds, backwards.
	src := specSrc(`render(t) = v[2 - 1/24 - t];`)
	u := synth(t, src, "rev-unopt.vmf", Options{})
	o := synth(t, src, "rev-opt.vmf", DefaultOptions())
	fu, fo := readFrames(t, u.OutPath), readFrames(t, o.OutPath)
	if len(fu) != 48 || len(fo) != 48 {
		t.Fatalf("counts = %d / %d", len(fu), len(fo))
	}
	ids := stamps(t, fo)
	for i, id := range ids {
		if id != uint32(47-i) {
			t.Fatalf("frame %d stamp = %d, want %d", i, id, 47-i)
		}
	}
	for i := range fu {
		if !fu[i].Equal(fo[i]) {
			t.Fatalf("frame %d differs between plans", i)
		}
	}
	// Reverse playback cannot stream-copy (not a plain affine clip).
	if o.Metrics.Output.PacketsCopied != 0 {
		t.Error("reverse playback should not copy packets")
	}
}

func TestTimelapse(t *testing.T) {
	// render(t) = v[2*t]: 2x speed over a 2-second output window reads the
	// first 4 seconds of source, every other frame.
	src := specSrc(`render(t) = v[2 * t];`)
	o := synth(t, src, "lapse.vmf", DefaultOptions())
	ids := stamps(t, readFrames(t, o.OutPath))
	if len(ids) != 48 {
		t.Fatalf("frames = %d", len(ids))
	}
	for i, id := range ids {
		if id != uint32(2*i) {
			t.Fatalf("frame %d stamp = %d, want %d", i, id, 2*i)
		}
	}
}

func TestSlowMotionRequiresGridAlignment(t *testing.T) {
	// render(t) = v[t/2] reads half-frame times for odd output frames —
	// off the source grid, so the checker rejects it (the data model has
	// no interpolation; a UDF would provide one).
	src := specSrc(`render(t) = v[t / 2];`)
	if _, err := SynthesizeSource(src, t.TempDir()+"/x.vmf", Options{}); err == nil {
		t.Fatal("half-speed without frame interpolation should fail the grid check")
	}
	// Frame-doubling slow motion on the output grid works: each source
	// frame shown twice via two interleaved arms is inexpressible with
	// affine guards, but doubling via a coarser source step works.
	srcOK := fmt.Sprintf(`
		timedomain range(0, 2, 1/12);
		videos { v: %q; }
		output { width: 160; height: 96; fps: 12; }
		render(t) = v[t];`, fxVid)
	o := synth(t, srcOK, "halfrate.vmf", DefaultOptions())
	ids := stamps(t, readFrames(t, o.OutPath))
	if len(ids) != 24 {
		t.Fatalf("frames = %d", len(ids))
	}
	for i, id := range ids {
		if id != uint32(2*i) {
			t.Fatalf("frame %d stamp = %d, want %d", i, id, 2*i)
		}
	}
}

func TestRemapEquivalenceUnderOptimization(t *testing.T) {
	// Mixed remap spec: forward clip, reversed middle, timelapse tail.
	src := specSrc(`render(t) = match t {
		t in range(0, 1/2, 1/24) => v[t + 1],
		t in range(1/2, 1, 1/24) => v[3/2 - 1/24 - t],
		t in range(1, 2, 1/24) => v[2 * t],
	};`)
	u := synth(t, src, "mix-unopt.vmf", Options{})
	o := synth(t, src, "mix-opt.vmf", DefaultOptions())
	fu, fo := readFrames(t, u.OutPath), readFrames(t, o.OutPath)
	for i := range fu {
		if !fu[i].Equal(fo[i]) {
			t.Fatalf("frame %d differs", i)
		}
	}
	// The forward clip arm still copies even though its neighbours can't.
	if o.Metrics.Output.PacketsCopied == 0 {
		t.Error("forward arm should stream-copy")
	}
}
