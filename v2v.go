// Package v2v is the public API of the V2V video result synthesis engine,
// a reproduction of "V2V: Efficiently Synthesizing Video Results for Video
// Queries" (ICDE 2024).
//
// V2V takes a declarative synthesis spec — a time domain, a render
// function over input videos and relational data arrays, and source
// bindings — and produces a single edited output video. Specs are
// data-aware rewritten, type-checked, lowered to a Concat/Clip/Filter
// plan, optimized (stream copies, smart cuts, operator merging, temporal
// sharding), and executed in parallel.
//
// Quick start:
//
//	spec, err := v2v.ParseSpec(`
//	    timedomain range(0, 10, 1/24);
//	    videos { cam: "footage.vmf"; }
//	    render(t) = zoom(cam[t + 60], 2);
//	`)
//	res, err := v2v.Synthesize(spec, "highlight.vmf", v2v.DefaultOptions())
//
// The module is self-contained: it ships its own media substrate (the VMF
// container and GV1 codec under internal/), standing in for MP4/H.264 +
// FFmpeg while preserving the structural properties the optimizer exploits
// (GOPs, encode ≫ decode ≫ copy).
package v2v

import (
	"context"
	"fmt"
	"io"
	"os"

	"v2v/internal/core"
	"v2v/internal/exec"
	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/opt"
	"v2v/internal/plan"
	"v2v/internal/rewrite"
	"v2v/internal/sqlmini"
	"v2v/internal/vql"
)

// Spec is a declarative synthesis specification (see the package
// documentation for the grammar).
type Spec = vql.Spec

// Options configures a synthesis run.
type Options = core.Options

// OptimizerPasses selects individual optimizer passes, for ablation.
type OptimizerPasses = opt.Options

// Result reports a synthesis run: the plan, execution metrics, and
// rewrite/optimizer statistics.
type Result = core.Result

// Metrics summarizes execution work (frames decoded/encoded, packets
// copied, wall time).
type Metrics = exec.Metrics

// GOPCache is a concurrency-safe LRU of decoded source GOPs, shared by
// every shard worker of a run (and, when reused across Options values, by
// concurrent runs): each source GOP is decoded once and its frames served
// to every consumer. Assign one to Options.GOPCache.
type GOPCache = media.GOPCache

// GOPCacheStats is a point-in-time snapshot of a cache's hit/miss/eviction
// counters and resident bytes.
type GOPCacheStats = media.GOPCacheStats

// NewGOPCache returns a decoded-GOP cache bounded by budgetBytes of frame
// data; budgetBytes <= 0 defers sizing to the executor, which derives a
// budget from the plan's source formats on first use.
func NewGOPCache(budgetBytes int64) *GOPCache { return media.NewGOPCache(budgetBytes) }

// ResultCache memoizes the encoded output of rendered segments across
// runs, keyed by canonical plan fingerprint + source content identity: a
// repeated or overlapping query splices the cached packets as a stream
// copy — zero source decodes, zero frame encodes. Assign one to
// Options.ResultCache and share it across runs.
type ResultCache = media.ResultCache

// ResultCacheStats is a point-in-time snapshot of a result cache's
// hit/miss/eviction counters and resident bytes.
type ResultCacheStats = media.ResultCacheStats

// NewResultCache returns an encoded-result cache bounded by budgetBytes;
// budgetBytes <= 0 uses a 256 MiB default.
func NewResultCache(budgetBytes int64) *ResultCache { return media.NewResultCache(budgetBytes) }

// CacheArbiter coordinates one shared byte budget across the GOP and
// result caches with scan-resistant admission and per-cache fairness
// floors, replacing the independent hard LRU caps — under concurrent
// heavy queries the caches degrade gracefully instead of thrashing each
// other. Attach caches with their AttachArbiter methods before first use.
type CacheArbiter = media.Arbiter

// CacheArbiterStats snapshots a shared-budget arbiter.
type CacheArbiterStats = media.ArbiterStats

// NewCacheArbiter returns an arbiter enforcing totalBytes across its
// attached caches; totalBytes <= 0 defaults the total to the sum of the
// attached caches' own budgets.
func NewCacheArbiter(totalBytes int64) *CacheArbiter { return media.NewArbiter(totalBytes) }

// RewriteStats reports what the data-dependent rewriter did.
type RewriteStats = rewrite.Stats

// Trace records spans for every pipeline stage of a synthesis run —
// assign one to Options.Trace and export it with WriteJSON (Chrome
// trace_event format, loadable in chrome://tracing or Perfetto).
type Trace = obs.Trace

// MetricsRegistry aggregates counters, gauges, and latency histograms
// process-wide, rendered in Prometheus text format (see internal/obs).
type MetricsRegistry = obs.Registry

// NewTrace starts an empty span trace named name.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// NewTraceID returns a random 16-hex-character request/run identifier,
// suitable for Trace.SetID and for joining log lines to traces.
func NewTraceID() string { return obs.NewTraceID() }

// Recorder accumulates per-stage (decode/filter/encode/copy) frames,
// bytes, and wall time for one synthesis run — assign one to
// Options.Recorder. The process-wide v2v_stage_* metrics are fed whether
// or not a recorder is attached.
type Recorder = obs.Recorder

// NewRecorder returns an empty per-run stage recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// FlightRecorder keeps a fixed-size ring of recent request records plus
// the in-flight set; v2vserve exposes one at /debug/requests.
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder returns a flight recorder keeping the last size
// completed requests (a default size when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder { return obs.NewFlightRecorder(size) }

// DefaultRegistry returns the process-wide metrics registry.
func DefaultRegistry() *MetricsRegistry { return obs.Default() }

// DB is the embedded relational engine used for sql-declared data arrays.
type DB = sqlmini.DB

// NewDB returns an empty relational database for sql data arrays.
func NewDB() *DB { return sqlmini.NewDB() }

// DefaultOptions enables the full pipeline: data-dependent rewriting plus
// the complete plan optimizer.
func DefaultOptions() Options { return core.DefaultOptions() }

// AllPasses returns the full optimizer pass set (for building ablated
// configurations by switching passes off).
func AllPasses() OptimizerPasses { return opt.Default() }

// ParseSpec parses the textual spec grammar.
func ParseSpec(src string) (*Spec, error) { return vql.Parse(src) }

// ParseSpecJSON parses the serialized JSON spec format.
func ParseSpecJSON(raw []byte) (*Spec, error) { return vql.UnmarshalSpecJSON(raw) }

// LoadSpec reads a spec file, accepting both the textual grammar and the
// JSON format (selected by a leading '{').
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("v2v: %w", err)
	}
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return ParseSpecJSON(raw)
		default:
			return ParseSpec(string(raw))
		}
	}
	return nil, fmt.Errorf("v2v: %s is empty", path)
}

// FormatSpec renders a spec in the textual grammar.
func FormatSpec(s *Spec) string { return vql.Format(s) }

// MarshalSpecJSON renders a spec in the JSON format.
func MarshalSpecJSON(s *Spec) ([]byte, error) { return vql.MarshalSpecJSON(s) }

// Synthesize runs the full pipeline and writes the result video to
// outPath.
func Synthesize(spec *Spec, outPath string, o Options) (*Result, error) {
	return core.Synthesize(spec, outPath, o)
}

// SynthesizeContext is Synthesize with cooperative cancellation: the
// executor checks ctx before every segment and at every GOP boundary
// inside render loops. A cancelled or timed-out run stops promptly,
// returns ctx.Err(), and leaves nothing at outPath — output files are
// written to a temp path and only renamed into place on success.
func SynthesizeContext(ctx context.Context, spec *Spec, outPath string, o Options) (*Result, error) {
	return core.SynthesizeContext(ctx, spec, outPath, o)
}

// SynthesizeSource parses and synthesizes a textual spec.
func SynthesizeSource(src, outPath string, o Options) (*Result, error) {
	return core.SynthesizeSource(src, outPath, o)
}

// SynthesizeSourceContext is SynthesizeSource with cooperative
// cancellation; see SynthesizeContext.
func SynthesizeSourceContext(ctx context.Context, src, outPath string, o Options) (*Result, error) {
	return core.SynthesizeSourceContext(ctx, src, outPath, o)
}

// Explain returns the (optionally optimized) plan for a spec as an
// indented text tree without executing it.
func Explain(spec *Spec, o Options) (string, error) {
	p, _, _, err := core.Plan(spec, o)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// ExplainAnalyze renders an executed run's plan tree annotated with each
// segment's measured wall time and packet/frame counts — the analogue of
// relational EXPLAIN ANALYZE. When the run used caches, end-of-run cache
// occupancy/budget summaries are appended as trailer lines.
func ExplainAnalyze(res *Result) string {
	out := res.Plan.ExplainAnalyze(res.Metrics.Segments)
	if s := res.Metrics.GOPCache; s != nil {
		out += fmt.Sprintf("-- gopcache: %d hits %d misses %d evictions, %d entries %dB resident of %dB budget\n",
			s.Hits, s.Misses, s.Evictions, s.Entries, s.Bytes, s.Budget)
	}
	if s := res.Metrics.ResultCache; s != nil {
		out += fmt.Sprintf("-- rescache: %d hits %d misses %d evictions, %d entries %dB resident of %dB budget\n",
			s.Hits, s.Misses, s.Evictions, s.Entries, s.Bytes, s.Budget)
	}
	return out
}

// ExplainDOT returns the plan as a Graphviz digraph.
func ExplainDOT(spec *Spec, o Options) (string, error) {
	p, _, _, err := core.Plan(spec, o)
	if err != nil {
		return "", err
	}
	return p.DOT(), nil
}

// SynthesizeStream runs the pipeline and streams the result progressively
// to w in the VMS stream format (read it back with a media stream reader
// or cmd/v2vserve's fetch mode). Packets are delivered as segments
// complete; Result.Metrics.FirstOutput records the latency to the first
// packet — the interactivity the paper targets.
func SynthesizeStream(spec *Spec, w io.Writer, o Options) (*Result, error) {
	return core.SynthesizeStream(spec, w, o)
}

// SynthesizeStreamContext is SynthesizeStream with cooperative
// cancellation — the entry point for request-scoped synthesis (v2vserve
// wires each HTTP request's context here, so a disconnected client stops
// its shard workers within one GOP of work). A cancelled stream ends
// without the end-of-stream marker: consumers observe truncation, not a
// spuriously clean end.
func SynthesizeStreamContext(ctx context.Context, spec *Spec, w io.Writer, o Options) (*Result, error) {
	return core.SynthesizeStreamContext(ctx, spec, w, o)
}

// PlanCost is a plan's static cost estimate — decode frames, encode
// frames, copied packets/bytes — with Units() collapsing it to a single
// scalar admission weight. Shown per segment and per plan in EXPLAIN.
type PlanCost = plan.Cost

// Prepared is a planned-but-not-yet-executed synthesis: the pipeline
// front half (check, rewrite, plan, optimize) has run and the plan's cost
// estimate is available. v2vserve prepares every request before admission
// so the admission controller can weigh it by estimated cost, then
// executes the prepared plan once admitted.
type Prepared = core.Prepared

// Prepare runs the pipeline front half and returns the prepared plan with
// its cost estimate; execute it with Prepared.SynthesizeStreamContext.
func Prepare(spec *Spec, o Options) (*Prepared, error) { return core.Prepare(spec, o) }
