package v2v

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"v2v/internal/dataset"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/rational"
	"v2v/internal/sqlmini"
)

var (
	fxVid string
	fxAnn string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "v2v-root-")
	if err != nil {
		panic(err)
	}
	p := dataset.TinyProfile()
	fxVid = filepath.Join(dir, "a.vmf")
	fxAnn = filepath.Join(dir, "a.boxes.json")
	if _, err := dataset.Generate(fxVid, fxAnn, p, rational.FromInt(4)); err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestPublicAPISynthesis(t *testing.T) {
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { cam: %q; }
		render(t) = cam[t + 1];`, fxVid)
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.vmf")
	res, err := Synthesize(spec, out, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Output.PacketsCopied != 24 {
		t.Errorf("copied = %d", res.Metrics.Output.PacketsCopied)
	}
	r, err := media.OpenReader(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fr, err := r.FrameAtIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := frame.ReadStamp(fr); !ok || id != 24 {
		t.Errorf("first frame stamp = %d,%v", id, ok)
	}
}

func TestSpecBuilder(t *testing.T) {
	spec, err := NewSpec(Sec(0), Sec(2), R(1, 24)).
		Video("cam", fxVid).
		Data("bb", fxAnn).
		Arm(Sec(0), Sec(1), R(1, 24), "cam[t]").
		Arm(Sec(1), Sec(2), R(1, 24), "boxes(cam[t], bb[t])").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.vmf")
	if _, err := Synthesize(spec, out, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	r, _ := media.OpenReader(out)
	defer r.Close()
	if r.NumFrames() != 48 {
		t.Errorf("frames = %d", r.NumFrames())
	}
}

func TestSpecBuilderErrors(t *testing.T) {
	if _, err := NewSpec(Sec(0), Sec(1), Sec(0)).Build(); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := NewSpec(Sec(0), Sec(1), R(1, 24)).Build(); err == nil {
		t.Error("no render should fail")
	}
	if _, err := NewSpec(Sec(0), Sec(1), R(1, 24)).
		Video("v", "x").Video("v", "y").Render("v[t]").Build(); err == nil {
		t.Error("duplicate video should fail")
	}
	if _, err := NewSpec(Sec(0), Sec(1), R(1, 24)).
		Video("v", "x").Render("v[t]").Render("v[t]").Build(); err == nil {
		t.Error("double render should fail")
	}
	if _, err := NewSpec(Sec(0), Sec(1), R(1, 24)).
		Video("v", "x").Render("ghost[t]").Build(); err == nil {
		t.Error("unresolved name should fail")
	}
	if _, err := NewSpec(Sec(0), Sec(1), R(1, 24)).
		Video("v", "x").
		Arm(Sec(0), Sec(1), R(1, 24), "v[t]").
		Render("v[t]").Build(); err == nil {
		t.Error("arms then render should fail")
	}
	if _, err := NewSpec(Sec(0), Sec(1), R(1, 24)).
		Data("d", "x").SQL("d", "SELECT 1").Build(); err == nil {
		t.Error("duplicate data name should fail")
	}
}

func TestSpecBuilderArmSetAndOutput(t *testing.T) {
	spec, err := NewSpec(Sec(0), Sec(2), Sec(1)).
		Video("cam", fxVid).
		Output(64, 48, Sec(1)).
		ArmSet([]Rat{Sec(0), Sec(1)}, "cam[t]").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "o.vmf")
	if _, err := Synthesize(spec, out, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	r, _ := media.OpenReader(out)
	defer r.Close()
	if r.Info().Width != 64 || r.NumFrames() != 2 {
		t.Errorf("info = %+v frames = %d", r.Info(), r.NumFrames())
	}
}

func TestLoadSpecBothFormats(t *testing.T) {
	dir := t.TempDir()
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { cam: %q; }
		render(t) = cam[t];`, fxVid)
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}

	textPath := filepath.Join(dir, "spec.v2v")
	if err := os.WriteFile(textPath, []byte(FormatSpec(spec)), 0o644); err != nil {
		t.Fatal(err)
	}
	fromText, err := LoadSpec(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if !fromText.Render.EqualExpr(spec.Render) {
		t.Error("text round-trip differs")
	}

	raw, err := MarshalSpecJSON(spec)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := LoadSpec(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !fromJSON.Render.EqualExpr(spec.Render) {
		t.Error("json round-trip differs")
	}

	empty := filepath.Join(dir, "empty.v2v")
	os.WriteFile(empty, []byte("  \n"), 0o644)
	if _, err := LoadSpec(empty); err == nil {
		t.Error("empty file should fail")
	}
	if _, err := LoadSpec(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestExplainAPI(t *testing.T) {
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { cam: %q; }
		render(t) = cam[t + 1];`, fxVid)
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	unopt, err := Explain(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(unopt, "unoptimized") || !strings.Contains(unopt, "clip cam") {
		t.Errorf("unopt explain:\n%s", unopt)
	}
	opted, err := Explain(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opted, "copy cam") {
		t.Errorf("opt explain should show a copy:\n%s", opted)
	}
	dot, err := ExplainDOT(spec, DefaultOptions())
	if err != nil || !strings.Contains(dot, "digraph") {
		t.Errorf("dot: %v\n%s", err, dot)
	}
	bad, _ := ParseSpec(fmt.Sprintf(`
		timedomain range(0, 100, 1/24);
		videos { cam: %q; }
		render(t) = cam[t];`, fxVid))
	if _, err := Explain(bad, Options{}); err == nil {
		t.Error("failing check should propagate")
	}
}

func TestSQLIntegrationThroughPublicAPI(t *testing.T) {
	db := NewDB()
	db.CreateTable("det", []sqlmini.Column{
		{Name: "ts", Type: sqlmini.TypeRat},
		{Name: "hot", Type: sqlmini.TypeBool},
	})
	for i := 0; i < 24; i++ {
		db.Insert("det", []sqlmini.Cell{
			sqlmini.RatCell(R(int64(i), 24)),
			sqlmini.BoolCell(i >= 12),
		})
	}
	spec, err := NewSpec(Sec(0), Sec(1), R(1, 24)).
		Video("cam", fxVid).
		SQL("hot", "SELECT ts, hot FROM det").
		Render("ifthenelse(hot[t], zoom(cam[t], 2), cam[t])").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "o.vmf")
	o := DefaultOptions()
	o.DB = db
	res, err := Synthesize(spec, out, o)
	if err != nil {
		t.Fatal(err)
	}
	// The rewrite should split cold/hot halves; cold half stream-copies.
	if res.RewriteStats.Skipped {
		t.Error("rewrite should fire")
	}
	if res.Metrics.Output.PacketsCopied == 0 {
		t.Error("cold half should copy")
	}
}
