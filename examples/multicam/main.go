// Multicam: "show me the event from multiple cameras as a 2x2 grid with
// object overlays" — four synchronized cameras composed into one result,
// with per-camera object boxes and a graded look.
//
//	go run ./examples/multicam
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"v2v"
	"v2v/internal/dataset"
	"v2v/internal/media"
	"v2v/internal/rational"
)

func main() {
	dir, err := os.MkdirTemp("", "v2v-multicam-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Four cameras observing the same scene (different seeds = different
	// viewpoints), each with detector annotations.
	prof := dataset.TinyProfile()
	prof.Objects = 2
	var cams, anns []string
	for i := 0; i < 4; i++ {
		p := prof
		p.Seed = int64(100 + i*17)
		cam := filepath.Join(dir, fmt.Sprintf("cam%d.vmf", i))
		ann := filepath.Join(dir, fmt.Sprintf("cam%d.boxes.json", i))
		if _, err := dataset.Generate(cam, ann, p, rational.FromInt(8)); err != nil {
			log.Fatal(err)
		}
		cams, anns = append(cams, cam), append(anns, ann)
	}
	fmt.Println("generated 4 camera feeds")

	// Spec built programmatically, the way a VDBMS integration would:
	// the "event" spans seconds 3..6 on every camera.
	spec, err := v2v.NewSpec(v2v.Sec(0), v2v.Sec(3), v2v.R(1, 24)).
		Video("cam0", cams[0]).Video("cam1", cams[1]).
		Video("cam2", cams[2]).Video("cam3", cams[3]).
		Data("bb0", anns[0]).Data("bb1", anns[1]).
		Data("bb2", anns[2]).Data("bb3", anns[3]).
		Render(`grade(grid(
			boxes(cam0[t + 3], bb0[t + 3]),
			boxes(cam1[t + 3], bb1[t + 3]),
			boxes(cam2[t + 3], bb2[t + 3]),
			boxes(cam3[t + 3], bb3[t + 3])), 5, 1.1, 1.2)`).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// Compare the unoptimized and optimized plans: merging removes the
	// four clip materializations and the grid/grade boundary.
	unopt, err := v2v.Explain(spec, v2v.Options{})
	if err != nil {
		log.Fatal(err)
	}
	opted, err := v2v.Explain(spec, v2v.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunoptimized plan:")
	fmt.Print(unopt)
	fmt.Println("\noptimized plan:")
	fmt.Print(opted)

	out := filepath.Join(dir, "event-grid.vmf")
	res, err := v2v.Synthesize(spec, out, v2v.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesized %s in %v (%d frames rendered, %d intermediate codec passes)\n",
		out, res.Metrics.Wall, res.Metrics.FramesRendered, res.Metrics.Intermediate.FramesEncoded)

	resUnopt, err := v2v.Synthesize(spec, filepath.Join(dir, "event-grid-unopt.vmf"), v2v.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unoptimized run: %v (%d intermediate codec passes)\n",
		resUnopt.Metrics.Wall, resUnopt.Metrics.Intermediate.FramesEncoded)

	r, err := media.OpenReader(out)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Printf("result: %d frames at %dx%d\n", r.NumFrames(), r.Info().Width, r.Info().Height)
}
