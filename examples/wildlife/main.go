// Wildlife: the paper's motivating example — "show me all the times zebras
// exhibited social behavior and overlay their IDs and the behavior type."
//
// A relational table of behavior events (as a VDBMS would produce from
// vision models) drives the synthesis: the result montage concatenates the
// social-behavior windows, draws the animals' bounding boxes with track
// IDs, and labels each window with the behavior type. The data-dependent
// rewriter stream-copies everything outside detection windows.
//
//	go run ./examples/wildlife
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"v2v"
	"v2v/internal/dataset"
	"v2v/internal/media"
	"v2v/internal/rational"
	"v2v/internal/sqlmini"
)

func main() {
	dir, err := os.MkdirTemp("", "v2v-wildlife-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Drone footage with sparse zebra appearances (KABR-like) plus the
	// detector's box annotations.
	footage := filepath.Join(dir, "drone.vmf")
	boxes := filepath.Join(dir, "drone.boxes.json")
	prof := dataset.KABRProfile()
	if _, err := dataset.Generate(footage, boxes, prof, rational.FromInt(40)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated", footage)

	// The VDBMS side: a behavior table. Each row is one classified event
	// window; here graze/social events over the 40-second flight.
	db := v2v.NewDB()
	if _, err := db.CreateTable("behaviors", []sqlmini.Column{
		{Name: "ts", Type: sqlmini.TypeRat},
		{Name: "behavior", Type: sqlmini.TypeStr},
	}); err != nil {
		log.Fatal(err)
	}
	// Annotate each frame's behavior: "SOCIAL" during two windows that
	// overlap zebra visibility, empty otherwise.
	for i := int64(0); i < 40*30; i++ {
		ts := rational.New(i, 30)
		sec := ts.Float()
		behavior := ""
		if (sec >= 8 && sec < 10) || (sec >= 28 && sec < 30) {
			behavior = "SOCIAL"
		}
		if err := db.Insert("behaviors", []sqlmini.Cell{
			sqlmini.RatCell(ts), sqlmini.StrCell(behavior),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// The synthesis spec: the full flight, with bounding boxes wherever
	// the detector fired and the behavior label burned in during events.
	// The rewriter removes boxes()/label() wherever their data is empty,
	// so quiet stretches stream-copy.
	src := fmt.Sprintf(`
		timedomain range(0, 40, 1/30);
		videos { drone: %q; }
		data { bb: %q; }
		sql { act: "SELECT ts, behavior FROM behaviors"; }
		render(t) = label(boxes(drone[t], bb[t]), act[t], 8, 8);
	`, footage, boxes)
	spec, err := v2v.ParseSpec(src)
	if err != nil {
		log.Fatal(err)
	}

	opts := v2v.DefaultOptions()
	opts.DB = db
	out := filepath.Join(dir, "zebra-social.vmf")
	res, err := v2v.Synthesize(spec, out, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsynthesized %s in %v\n", out, res.Metrics.Wall)
	fmt.Printf("  data rewrites: %v\n", res.RewriteStats.Applied)
	fmt.Printf("  match arms after rewrite: %d (from %d)\n",
		res.RewriteStats.ArmsAfter, res.RewriteStats.ArmsBefore)
	fmt.Printf("  packets stream-copied: %d of %d output frames\n",
		res.Metrics.Output.PacketsCopied,
		res.Metrics.Output.PacketsCopied+res.Metrics.Output.FramesEncoded)

	r, err := media.OpenReader(out)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Printf("  result: %d frames, %v seconds\n", r.NumFrames(), r.Container().Duration())
}
