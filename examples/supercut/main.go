// Supercut: assemble a highlight reel from many short clips of a long
// film. Because the clips are plain references, the optimizer turns almost
// the whole job into stream copies and smart cuts — the class of edit the
// paper calls "the fastest class of video edits operating near the speed
// of a memory copy."
//
//	go run ./examples/supercut
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"v2v"
	"v2v/internal/dataset"
	"v2v/internal/rational"
)

func main() {
	dir, err := os.MkdirTemp("", "v2v-supercut-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A 60-second "film" with keyframes every second (easy smart cuts).
	film := filepath.Join(dir, "film.vmf")
	prof := dataset.TinyProfile()
	if _, err := dataset.Generate(film, "", prof, rational.FromInt(60)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated", film)

	// Eight "iconic moments": 1.5-second clips at scattered positions,
	// deliberately off the keyframe grid. A highlight reel is their
	// concatenation with a crossfaded sting at the end.
	moments := []int64{3, 9, 17, 22, 31, 38, 44, 52}
	clipLen := rational.New(3, 2)
	var arms []string
	cursor := rational.Zero
	for _, m := range moments {
		lo, hi := cursor, cursor.Add(clipLen)
		shift := rational.FromInt(m).Add(rational.New(5, 24)).Sub(lo)
		arms = append(arms, fmt.Sprintf("  t in range(%s, %s, 1/24) => film[t + %s],", lo, hi, shift))
		cursor = hi
	}
	// Final second: crossfade between the first and last moments.
	end := cursor.Add(rational.One)
	arms = append(arms, fmt.Sprintf(
		"  t in range(%s, %s, 1/24) => crossfade(film[t - %s + %d], film[t - %s + %d], (t - %s)),",
		cursor, end, cursor, moments[0], cursor, moments[len(moments)-1], cursor))

	src := fmt.Sprintf(`
		timedomain range(0, %s, 1/24);
		videos { film: %q; }
		render(t) = match t {
%s
		};
	`, end, film, strings.Join(arms, "\n"))

	spec, err := v2v.ParseSpec(src)
	if err != nil {
		log.Fatal(err)
	}

	out := filepath.Join(dir, "supercut.vmf")
	res, err := v2v.Synthesize(spec, out, v2v.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	unopt, err := v2v.Synthesize(spec, filepath.Join(dir, "supercut-unopt.vmf"), v2v.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsupercut: %d clips + crossfade = %s seconds\n", len(moments), end)
	fmt.Printf("optimized:   %8v  (%d packets copied, %d frames re-encoded)\n",
		res.Metrics.Wall, res.Metrics.Output.PacketsCopied, res.Metrics.Output.FramesEncoded)
	fmt.Printf("unoptimized: %8v  (%d packets copied, %d frames re-encoded)\n",
		unopt.Metrics.Wall, unopt.Metrics.Output.PacketsCopied, unopt.Metrics.Output.FramesEncoded)
	speedup := float64(unopt.Metrics.Wall) / float64(res.Metrics.Wall)
	fmt.Printf("speedup:     %.2fx\n", speedup)
}
