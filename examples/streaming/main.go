// Streaming: consume a synthesis result while it is still being produced —
// the interactivity the paper targets ("begin playback within seconds"
// even for long results). A consumer goroutine plays frames off a pipe as
// the engine pushes packets; the first frame is watchable long before the
// render finishes.
//
//	go run ./examples/streaming
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"v2v"
	"v2v/internal/dataset"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/rational"
)

func main() {
	dir, err := os.MkdirTemp("", "v2v-streaming-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	source := filepath.Join(dir, "footage.vmf")
	if _, err := dataset.Generate(source, "", dataset.TinyProfile(), rational.FromInt(12)); err != nil {
		log.Fatal(err)
	}

	// A result that front-loads copies (instant packets) and ends with an
	// expensive render: the consumer starts watching immediately even
	// though the tail takes a while.
	src := fmt.Sprintf(`
		timedomain range(0, 8, 1/24);
		videos { cam: %q; }
		render(t) = match t {
			t in range(0, 6, 1/24) => cam[t + 2],
			t in range(6, 8, 1/24) => blur(zoom(cam[t + 2], 2), 1.5),
		};
	`, source)
	spec, err := v2v.ParseSpec(src)
	if err != nil {
		log.Fatal(err)
	}

	pr, pw := io.Pipe()
	start := time.Now()
	type done struct {
		res *v2v.Result
		err error
	}
	doneCh := make(chan done, 1)
	go func() {
		res, err := v2v.SynthesizeStream(spec, pw, v2v.DefaultOptions())
		pw.CloseWithError(err)
		doneCh <- done{res, err}
	}()

	// The "player": decode frames as packets arrive.
	sr, err := media.NewStreamReader(pr)
	if err != nil {
		log.Fatal(err)
	}
	var firstFrame time.Duration
	frames := 0
	for {
		fr, err := sr.NextFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if frames == 0 {
			firstFrame = time.Since(start)
			if id, ok := frame.ReadStamp(fr); ok {
				fmt.Printf("first frame decoded after %v (source frame %d)\n", firstFrame, id)
			}
		}
		frames++
	}
	total := time.Since(start)
	d := <-doneCh
	if d.err != nil {
		log.Fatal(d.err)
	}

	fmt.Printf("played %d frames; stream complete after %v\n", frames, total)
	fmt.Printf("engine wall %v, first packet at %v, %d packets copied\n",
		d.res.Metrics.Wall, d.res.Metrics.FirstOutput, d.res.Metrics.Output.PacketsCopied)
	fmt.Printf("playback head start: %.0f%% of the result was watchable before synthesis finished\n",
		100*(1-float64(firstFrame)/float64(total)))
}
