// Quickstart: generate a small synthetic video, write a declarative spec
// that zooms into one second of it, synthesize the result, and verify the
// output frame-exactly.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"v2v"
	"v2v/internal/dataset"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/rational"
)

func main() {
	dir, err := os.MkdirTemp("", "v2v-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. A source video: 10 seconds of synthetic footage (every frame
	// carries a machine-readable frame number).
	source := filepath.Join(dir, "footage.vmf")
	if _, err := dataset.Generate(source, "", dataset.TinyProfile(), rational.FromInt(10)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated", source)

	// 2. A declarative spec: a 3-second result; the first 2 seconds clip
	// footage starting at t=4s, the last second zooms in 2x.
	src := fmt.Sprintf(`
		timedomain range(0, 3, 1/24);
		videos { cam: %q; }
		render(t) = match t {
			t in range(0, 2, 1/24) => cam[t + 4],
			t in range(2, 3, 1/24) => zoom(cam[t + 4], 2),
		};
	`, source)
	spec, err := v2v.ParseSpec(src)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Look at the optimized plan before running it.
	explain, err := v2v.Explain(spec, v2v.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan:")
	fmt.Print(explain)

	// 4. Synthesize.
	out := filepath.Join(dir, "result.vmf")
	res, err := v2v.Synthesize(spec, out, v2v.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesized %s in %v\n", out, res.Metrics.Wall)
	fmt.Printf("  packets copied  %d (the 2-second clip)\n", res.Metrics.Output.PacketsCopied)
	fmt.Printf("  frames encoded  %d (the zoomed second)\n", res.Metrics.Output.FramesEncoded)

	// 5. Verify frame-exactness via the embedded stamps: output frame i
	// must come from source frame 96+i (t=4s at 24 fps).
	r, err := media.OpenReader(out)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 48; i++ { // the copied clip is verifiable exactly
		fr, err := r.FrameAtIndex(i)
		if err != nil {
			log.Fatal(err)
		}
		id, ok := frame.ReadStamp(fr)
		if !ok || id != uint32(96+i) {
			log.Fatalf("frame %d: stamp=%d ok=%v, want %d", i, id, ok, 96+i)
		}
	}
	fmt.Println("verified: output frames are exactly source frames 96..143 plus the zoomed second")
}
